// SoC assembly: builds and wires the full case-study system (Figure 1 /
// Section V) in any SecurityMode, owns every component, and runs it.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baseline/centralized.hpp"
#include "bus/fabric.hpp"
#include "bus/system_bus.hpp"
#include "core/alert.hpp"
#include "core/ciphering_firewall.hpp"
#include "core/config_memory.hpp"
#include "core/local_firewall.hpp"
#include "core/reconfig.hpp"
#include "ip/dma_engine.hpp"
#include "ip/processor.hpp"
#include "ip/scripted_master.hpp"
#include "mem/bram.hpp"
#include "mem/ddr.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "soc/soc_config.hpp"

namespace secbus::obs {
class Registry;
}

namespace secbus::soc {

// Named address windows derived from a SocConfig; both the workload
// generators and the security policies are expressed over these.
struct AddressPlan {
  struct Window {
    sim::Addr base = 0;
    std::uint64_t size = 0;
  };

  Window bram_scratch;  // shared on-chip scratchpad, RW for everyone
  Window bram_boot;     // boot/parameter area, read-only for processors
  std::vector<Window> cpu_windows;  // private external windows (protected)
  Window shared_code;   // shared external code, RO for CPUs, RW for the DMA
  Window ddr_scratch;   // unprotected external scratch (the paper's
                        // "non sensitive part of the system")

  // Per-CPU protected-window size under this plan's layout for a
  // hypothetical CPU count. from_config() asserts it is >= 4096; campaign
  // validation calls it to reject bad `cpus` values *before* building a
  // SoC, so the two can never disagree on the layout formula.
  [[nodiscard]] static std::uint64_t cpu_window_bytes(const SocConfig& cfg,
                                                      std::size_t processors);

  static AddressPlan from_config(const SocConfig& cfg);
};

// Well-known firewall / master identifiers used by the presets and tests.
inline constexpr core::FirewallId kFwCpuBase = 0;      // CPU i -> id i
inline constexpr core::FirewallId kFwDma = 100;
inline constexpr core::FirewallId kFwBram = 200;
inline constexpr core::FirewallId kFwLcf = 300;
inline constexpr sim::MasterId kMasterCpuBase = 0;
inline constexpr sim::MasterId kMasterDma = 100;
// Scripted/custom masters start well above the fixed firewall ids so their
// per-master policies can never collide with the built-in ones.
inline constexpr sim::MasterId kMasterScriptedBase = 400;

// Quick summary of a run; detailed stats stay queryable on the Soc itself.
struct SocResults {
  sim::Cycle cycles = 0;
  bool completed = false;  // all processors finished before the cycle cap
  std::uint64_t transactions_ok = 0;
  std::uint64_t transactions_failed = 0;
  std::uint64_t alerts = 0;
  double avg_access_latency = 0.0;  // mean issue->response cycles across CPUs
  double bus_occupancy = 0.0;  // aggregate across every fabric segment
  std::uint64_t bytes_moved = 0;
  // Exact per-access issue->response percentiles, merged over every
  // processor's latency histogram (nearest-rank; see util::LatencyHistogram).
  std::uint64_t latency_p50 = 0;
  std::uint64_t latency_p95 = 0;
  std::uint64_t latency_p99 = 0;
  std::uint64_t latency_max = 0;
};

class Soc {
 public:
  explicit Soc(const SocConfig& cfg);

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  // Runs until every processor finished and the fabric drained, or until
  // `max_cycles`. Returns the summary.
  SocResults run(sim::Cycle max_cycles);

  // Walks every component's Stats into `reg` under the stable hierarchical
  // naming scheme (bus.seg<i>.*, core.<firewall>.*, ip.<master>.*,
  // mem.ddr.*, trace.*). Pull-model: costs nothing unless called, and a
  // given SoC state always snapshots to the same document. The process-wide
  // FormatCache is deliberately excluded — it races across batch threads
  // and would break byte-stable per-job artifacts.
  void snapshot_metrics(obs::Registry& reg) const;

  // Zeroes every component's statistics (fabric, masters, memories,
  // firewalls, crypto cores) without touching simulation or security
  // state, so a later snapshot_metrics() covers only the cycles since.
  // The alert log and the event trace are history, not counters, and are
  // left alone.
  void reset_stats();

  // Adds a scripted master behind its own firewall/gate with the given
  // policy. Must be called before run(). Returns the master for scripting.
  // `segment` places it on the fabric (default: farthest from the memories).
  ip::ScriptedMaster& add_scripted_master(const std::string& name,
                                          core::SecurityPolicy policy,
                                          std::size_t segment = kRemoteSegment);

  // Resolves to "the segment farthest from the memories" when passed as the
  // `segment` of attach_custom_master — the most adversarial placement for
  // attack masters (0 on a flat fabric, a far corner on a mesh).
  static constexpr std::size_t kRemoteSegment =
      std::numeric_limits<std::size_t>::max();

  // Attaches an externally-owned master component (e.g. a FloodMaster)
  // behind its own firewall/gate with the given policy and registers it with
  // the kernel. Returns the endpoint the component should connect() to. The
  // component must outlive this SoC's runs.
  // `done` (optional) joins the quiescence predicate so run() keeps going
  // while the custom master is still active. `lf_cfg` (optional) overrides
  // the Local Firewall configuration for this master in distributed mode
  // (e.g. to enable the DoS throttle on a suspect interface). `segment`
  // picks the fabric segment the master (and its firewall) lives on.
  bus::MasterEndpoint& attach_custom_master(
      sim::Component& component, const std::string& name,
      core::SecurityPolicy policy, std::function<bool()> done = {},
      const core::LocalFirewall::Config* lf_cfg = nullptr,
      std::size_t segment = kRemoteSegment);

  // Starts the dedicated IP's DMA job (no-op SoCs without the dedicated IP
  // abort). Typically scheduled before run().
  void start_dma(const ip::DmaEngine::Job& job);

  // --- component access (tests, benches, attack framework) -------------
  [[nodiscard]] const SocConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const AddressPlan& plan() const noexcept { return plan_; }
  sim::SimKernel& kernel() noexcept { return kernel_; }
  bus::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const bus::Fabric& fabric() const noexcept { return *fabric_; }
  // The memory-side segment — the *only* segment on a flat topology (which
  // is what pre-fabric callers mean by "the bus").
  bus::SystemBus& bus() noexcept {
    return fabric_->segment(cfg_.memory_segment);
  }
  // Fabric segment hosting processor `i` under this SoC's placement.
  [[nodiscard]] std::size_t cpu_segment(std::size_t i) const noexcept;
  // Default memory home segment (cfg.memory_segment); the per-memory
  // accessors below resolve kAutoSegment overrides against it.
  [[nodiscard]] std::size_t memory_segment() const noexcept;
  // Segment hosting the secure internal BRAM (+ its slave firewall/gate).
  [[nodiscard]] std::size_t bram_segment() const noexcept;
  // Segment hosting the open external DDR (+ the LCF). Anchor for
  // "farthest from the memories" attack placement and max-hops reporting.
  [[nodiscard]] std::size_t ddr_segment() const noexcept;
  [[nodiscard]] std::size_t dma_segment() const noexcept;
  mem::DdrMemory& ddr() noexcept { return *ddr_; }
  mem::Bram& bram() noexcept { return *bram_; }
  core::SecurityEventLog& log() noexcept { return log_; }
  core::ConfigurationMemory& config_mem() noexcept { return config_mem_; }
  sim::EventTrace& trace() noexcept { return trace_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ip::Processor>>& processors()
      const noexcept {
    return processors_;
  }
  ip::DmaEngine* dma() noexcept { return dma_.get(); }
  // Non-null only in distributed mode.
  core::LocalCipheringFirewall* lcf() noexcept { return lcf_.get(); }
  core::SlaveFirewall* bram_firewall() noexcept { return bram_fw_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<core::LocalFirewall>>&
  master_firewalls() const noexcept {
    return master_fws_;
  }
  // Non-null only in centralized mode.
  baseline::CentralizedManager* manager() noexcept { return manager_.get(); }
  core::PolicyReconfigurator* reconfigurator() noexcept {
    return reconfig_.get();
  }

  // Builds the default policy for CPU `i` under this SoC's plan (exposed so
  // tests and attack scenarios can derive variants).
  [[nodiscard]] core::SecurityPolicy cpu_policy(std::size_t i) const;
  [[nodiscard]] core::SecurityPolicy dma_policy() const;
  [[nodiscard]] core::SecurityPolicy bram_policy() const;
  [[nodiscard]] core::SecurityPolicy lcf_policy() const;

 private:
  void build_memory();
  void build_policies();
  void build_masters();
  void register_components();
  void append_extra_rules(core::PolicyBuilder& builder) const;
  [[nodiscard]] bool quiescent() const;

  SocConfig cfg_;
  AddressPlan plan_;
  sim::SimKernel kernel_;
  sim::EventTrace trace_;
  core::SecurityEventLog log_;
  core::ConfigurationMemory config_mem_;

  std::unique_ptr<bus::Fabric> fabric_;
  std::unique_ptr<mem::Bram> bram_;
  std::unique_ptr<mem::DdrMemory> ddr_;

  // Slave-side protection (one of these wraps each memory, by mode).
  std::unique_ptr<core::SlaveFirewall> bram_fw_;
  std::unique_ptr<core::LocalCipheringFirewall> lcf_;
  std::unique_ptr<baseline::CentralizedManager> manager_;
  std::unique_ptr<baseline::CentralizedSlaveGate> bram_gate_;
  std::unique_ptr<baseline::CentralizedSlaveGate> ddr_gate_;

  std::vector<std::unique_ptr<ip::Processor>> processors_;
  std::unique_ptr<ip::DmaEngine> dma_;
  std::vector<std::unique_ptr<ip::ScriptedMaster>> scripted_;

  std::vector<std::unique_ptr<core::LocalFirewall>> master_fws_;
  std::vector<std::unique_ptr<baseline::CentralizedMasterGate>> master_gates_;
  std::vector<std::function<bool()>> custom_done_;
  sim::MasterId next_custom_index_ = 0;

  std::unique_ptr<core::PolicyReconfigurator> reconfig_;
};

}  // namespace secbus::soc
