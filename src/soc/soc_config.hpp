// SoC configuration: everything needed to build the case-study system
// (Section V: 3 MicroBlaze processors, one internal BRAM memory, one
// external DDR memory, one dedicated IP) in any of its security variants.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace secbus::soc {

// Where security checks live.
enum class SecurityMode : std::uint8_t {
  kNone,         // raw system, no protection (Table I "w/o firewalls")
  kDistributed,  // the paper's contribution: LF per IP + LCF on ext. memory
  kCentralized,  // SECA-like baseline: one shared enforcement module
};

[[nodiscard]] const char* to_string(SecurityMode mode) noexcept;

// Accepts the to_string() name; false on anything else.
[[nodiscard]] bool parse_security_mode(std::string_view text,
                                       SecurityMode& out) noexcept;

// External-memory protection level (the LCF's CM/IM policy parameters).
enum class ProtectionLevel : std::uint8_t {
  kPlaintext,   // CM=bypass, IM=bypass (the paper's unprotected memory)
  kCipherOnly,  // CM=cipher, IM=bypass (the paper's "only ciphered" case)
  kFull,        // CM=cipher, IM=hash tree (+ time stamps)
};

[[nodiscard]] const char* to_string(ProtectionLevel level) noexcept;

// Accepts both the to_string() names ("plaintext", "cipher-only",
// "cipher+integrity") and the CLI short forms ("cipher", "full").
[[nodiscard]] bool parse_protection_level(std::string_view text,
                                          ProtectionLevel& out) noexcept;

// Shape of the interconnect fabric the SoC is built on.
enum class TopologyKind : std::uint8_t {
  kFlat,  // one shared bus segment (the paper's case-study interconnect)
  kStar,  // memory hub segment + N CPU leaf segments
  kMesh,  // rows x cols grid of segments, memories at grid corner 0
};

[[nodiscard]] const char* to_string(TopologyKind kind) noexcept;

// Declarative interconnect description resolved by the Soc into a
// bus::Fabric (segment graph + bridge latencies) and a placement: memories
// and the dedicated IP live on segment 0, processors spread round-robin
// over the CPU-bearing segments, and each master's Local Firewall sits on
// its master's segment.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kFlat;
  std::size_t star_leaves = 4;  // kStar: leaf segments around the hub
  std::size_t mesh_rows = 2;    // kMesh grid shape
  std::size_t mesh_cols = 2;
  sim::Cycle hop_latency = 2;   // per-bridge segment-crossing cost

  [[nodiscard]] static TopologySpec flat() { return TopologySpec{}; }
  [[nodiscard]] static TopologySpec star(std::size_t leaves,
                                         sim::Cycle hop_latency = 2) {
    TopologySpec spec;
    spec.kind = TopologyKind::kStar;
    spec.star_leaves = leaves;
    spec.hop_latency = hop_latency;
    return spec;
  }
  [[nodiscard]] static TopologySpec mesh(std::size_t rows, std::size_t cols,
                                         sim::Cycle hop_latency = 2) {
    TopologySpec spec;
    spec.kind = TopologyKind::kMesh;
    spec.mesh_rows = rows;
    spec.mesh_cols = cols;
    spec.hop_latency = hop_latency;
    return spec;
  }

  [[nodiscard]] std::size_t segment_count() const noexcept {
    switch (kind) {
      case TopologyKind::kFlat: return 1;
      case TopologyKind::kStar: return 1 + star_leaves;
      case TopologyKind::kMesh: return mesh_rows * mesh_cols;
    }
    return 1;
  }

  // Stable axis label for sweeps/reports: "flat", "star4", "mesh2x2", ...
  [[nodiscard]] std::string label() const;
};

// Inverse of TopologySpec::label(): "flat" | "star<leaves>" |
// "mesh<rows>x<cols>" (e.g. star4, mesh2x2); segment counts are capped at
// 64. `hop_latency` keeps its default; false on anything else.
[[nodiscard]] bool parse_topology(std::string_view text,
                                  TopologySpec& out) noexcept;

struct SocConfig {
  // Sentinel for the placement fields below: "derive from the other
  // placement choices" instead of a fixed segment index.
  static constexpr std::size_t kAutoSegment = static_cast<std::size_t>(-1);

  // --- structure ------------------------------------------------------
  std::size_t processors = 3;
  TopologySpec topology;  // interconnect fabric shape (default: flat bus)
  bool dedicated_ip = true;  // the DMA engine
  // Default home fabric segment of the memories and their slave-side
  // protection (the historical anchor was segment 0). Must be
  // < segment_count().
  std::size_t memory_segment = 0;
  // Per-memory placement overrides: the secure on-chip BRAM (plus its slave
  // firewall / gate) and the open external DDR (plus the LCF) can live on
  // *different* fabric segments; kAutoSegment keeps each on
  // memory_segment. The DDR's segment is the anchor for "farthest from the
  // memories" attack placement and the reported fabric diameter, since the
  // protected external memory is the threat model's target.
  std::size_t bram_segment = kAutoSegment;
  std::size_t ddr_segment = kAutoSegment;
  // Home segment of the dedicated IP; kAutoSegment follows memory_segment.
  std::size_t dma_segment = kAutoSegment;
  SecurityMode security = SecurityMode::kDistributed;
  ProtectionLevel protection = ProtectionLevel::kFull;
  bool enable_reconfig = false;  // alert-driven policy lockdown responder
  std::size_t trace_capacity = 0;

  // --- memory map -------------------------------------------------------
  sim::Addr bram_base = 0x0000'0000;
  std::uint64_t bram_size = 128 * 1024;
  sim::Addr ddr_base = 0x8000'0000;
  std::uint64_t ddr_size = 1024 * 1024;
  // Protected window inside the DDR (must be line_bytes * power-of-two).
  sim::Addr ddr_protected_base = 0x8000'0000;
  std::uint64_t ddr_protected_size = 256 * 1024;
  std::uint64_t line_bytes = 32;

  // --- timing -------------------------------------------------------------
  sim::ClockDomain clock{100e6};  // ML605 bus clock
  sim::Cycle sb_check_cycles = 12;   // Table II
  sim::Cycle cc_latency = 11;        // Table II
  double cc_bits_per_cycle = 4.5;    // 450 Mb/s @ 100 MHz
  sim::Cycle ic_latency = 20;        // Table II
  double ic_bits_per_cycle = 1.31;   // 131 Mb/s @ 100 MHz

  // --- workload ------------------------------------------------------------
  std::uint64_t seed = 42;
  std::uint64_t transactions_per_cpu = 300;
  double write_fraction = 0.4;
  // Fraction of each processor's accesses that target the external memory
  // (Section V: the internal/external mix drives protection overhead).
  double external_fraction = 0.3;
  // Compute gap between accesses (computation:communication ratio).
  sim::Cycle compute_min = 4;
  sim::Cycle compute_max = 12;
  std::uint16_t max_burst_beats = 4;

  // --- policy shape ---------------------------------------------------------
  // Extra dummy segment rules added to every firewall's policy on top of the
  // functional ones (drives the policy-aggressiveness ablation).
  std::size_t extra_rules = 0;
};

}  // namespace secbus::soc
