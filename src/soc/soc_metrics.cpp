// Observability surface of the assembled SoC: snapshot_metrics() walks every
// component's Stats into an obs::Registry under the stable naming scheme, and
// reset_stats() zeroes the same accounting without disturbing simulation or
// security state. Kept out of soc.cpp so the wiring and the observability
// layers evolve independently.
#include <string>

#include "obs/registry.hpp"
#include "soc/soc.hpp"

namespace secbus::soc {

void Soc::snapshot_metrics(obs::Registry& reg) const {
  fabric_->contribute_metrics(reg);

  for (const auto& cpu : processors_) {
    cpu->contribute_metrics(reg, "ip." + cpu->name());
  }
  if (dma_ != nullptr) dma_->contribute_metrics(reg, "ip." + dma_->name());
  for (const auto& sm : scripted_) {
    const std::string prefix = "ip." + sm->name();
    const ip::ScriptedMaster::Stats& s = sm->stats();
    reg.counter(prefix + ".issued", s.issued);
    reg.counter(prefix + ".ok", s.ok);
    reg.counter(prefix + ".violations", s.violations);
    reg.counter(prefix + ".other_errors", s.other_errors);
    reg.stat(prefix + ".latency", s.latency);
  }

  ddr_->contribute_metrics(reg, "mem.ddr");

  for (const auto& fw : master_fws_) {
    fw->contribute_metrics(reg, "core." + fw->name());
  }
  if (bram_fw_ != nullptr) {
    bram_fw_->contribute_metrics(reg,
                                 "core." + std::string(bram_fw_->slave_name()));
  }
  if (lcf_ != nullptr) {
    lcf_->contribute_metrics(reg, "core." + std::string(lcf_->slave_name()));
  }

  for (const auto& gate : master_gates_) {
    core::contribute_firewall_metrics(reg, "core." + gate->name(),
                                      gate->stats());
  }
  if (bram_gate_ != nullptr) {
    core::contribute_firewall_metrics(
        reg, "core." + std::string(bram_gate_->slave_name()),
        bram_gate_->stats());
  }
  if (ddr_gate_ != nullptr) {
    core::contribute_firewall_metrics(
        reg, "core." + std::string(ddr_gate_->slave_name()),
        ddr_gate_->stats());
  }
  if (manager_ != nullptr) {
    reg.counter("core.manager.checks_served", manager_->checks_served());
    reg.stat("core.manager.queue_wait", manager_->queue_wait());
    reg.stat("core.manager.total_latency", manager_->total_latency());
  }
  if (reconfig_ != nullptr) {
    reg.counter("core.reconfig.lockdowns", reconfig_->lockdowns().size());
  }

  reg.counter("trace.total", trace_.total_recorded());
  for (int k = 0; k <= static_cast<int>(sim::TraceKind::kAttackAction); ++k) {
    const auto kind = static_cast<sim::TraceKind>(k);
    reg.counter(std::string("trace.") + sim::to_string(kind),
                trace_.count_of(kind));
  }

  reg.counter("soc.cycles", kernel_.now());
  reg.counter("soc.alerts", log_.count());
}

void Soc::reset_stats() {
  fabric_->reset_stats();
  for (auto& cpu : processors_) cpu->reset_stats();
  if (dma_ != nullptr) dma_->reset_stats();
  for (auto& sm : scripted_) sm->reset_stats();
  ddr_->reset_stats();
  for (auto& fw : master_fws_) fw->reset_stats();
  if (bram_fw_ != nullptr) bram_fw_->reset_stats();
  if (lcf_ != nullptr) lcf_->reset_stats();
  for (auto& gate : master_gates_) gate->reset_stats();
  if (bram_gate_ != nullptr) bram_gate_->reset_stats();
  if (ddr_gate_ != nullptr) ddr_gate_->reset_stats();
  if (manager_ != nullptr) manager_->reset_stats();
}

}  // namespace secbus::soc
