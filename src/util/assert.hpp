// Invariant checking for the secbus simulator.
//
// The simulation kernel runs millions of cycles; we want invariant checks that
// are always on (they guard security-relevant state machines), cheap, and that
// abort with a useful message instead of throwing across component boundaries.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace secbus::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "secbus assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace secbus::util

// Always-on invariant check. Use for conditions that indicate a simulator bug
// (protocol violations, out-of-range internal state), not for user input.
#define SECBUS_ASSERT(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::secbus::util::assert_fail(#cond, __FILE__, __LINE__, (msg));       \
    }                                                                      \
  } while (false)

// Marks unreachable control flow; aborts if reached.
#define SECBUS_UNREACHABLE(msg) \
  ::secbus::util::assert_fail("unreachable", __FILE__, __LINE__, (msg))
