// Small bit-manipulation helpers shared by the crypto and bus subsystems.
//
// Everything here is constexpr and branch-free where possible: these helpers
// sit on the AES/SHA hot paths of the functional model.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace secbus::util {

// Rotate left / right for 32- and 64-bit words (wraps std::rotl/rotr so call
// sites read uniformly and we can keep C++17-compatible fallbacks if needed).
[[nodiscard]] constexpr std::uint32_t rotl32(std::uint32_t x, int r) noexcept {
  return std::rotl(x, r);
}
[[nodiscard]] constexpr std::uint32_t rotr32(std::uint32_t x, int r) noexcept {
  return std::rotr(x, r);
}
[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return std::rotl(x, r);
}
[[nodiscard]] constexpr std::uint64_t rotr64(std::uint64_t x, int r) noexcept {
  return std::rotr(x, r);
}

// FNV-1a 64-bit over raw bytes. One implementation for every fingerprint in
// the tree — shard/checkpoint fingerprints persist to disk, so the hash
// must never fork between call sites.
inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

[[nodiscard]] inline std::uint64_t fnv1a_64(std::uint64_t h, const void* data,
                                            std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

// Big-endian load/store (SHA-256 and AES operate on big-endian word streams).
[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

// Little-endian load/store (bus payloads are little-endian byte streams).
[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

[[nodiscard]] inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

// Returns true when x is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

// Rounds x up to the next multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t x,
                                               std::uint64_t align) noexcept {
  return (x + align - 1) & ~(align - 1);
}

// Rounds x down to a multiple of `align` (align must be a power of two).
[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t x,
                                                 std::uint64_t align) noexcept {
  return x & ~(align - 1);
}

// ceil(a / b) for unsigned integers; b must be nonzero.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

// Integer log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_pow2(std::uint64_t x) noexcept {
  return static_cast<unsigned>(std::countr_zero(x));
}

// Constant-time byte-span comparison: used when comparing MACs/digests so the
// functional model mirrors what a hardware comparator does (no early exit).
[[nodiscard]] inline bool ct_equal(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace secbus::util
