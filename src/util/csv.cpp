#include "util/csv.hpp"

#include <cstdio>

namespace secbus::util {

CsvWriter::CsvWriter(std::string path) : path_(std::move(path)) {}

CsvWriter::~CsvWriter() { flush(); }

void CsvWriter::header(const std::vector<std::string>& cols) { emit_line(cols); }

void CsvWriter::row(const std::vector<std::string>& cells) { emit_line(cells); }

void CsvWriter::emit_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) buffer_.push_back(',');
    buffer_ += escape(cells[i]);
  }
  buffer_.push_back('\n');
}

void CsvWriter::flush() {
  if (path_.empty() || buffer_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    ok_ = false;
    return;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace secbus::util
