// CSV emission for bench sweeps: every bench can mirror its human-readable
// table as machine-readable CSV (one file per experiment) so downstream plots
// can regenerate the paper's figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secbus::util {

class CsvWriter {
 public:
  // Opens `path` for writing; truncates. An empty path buffers in memory only
  // (useful in tests).
  explicit CsvWriter(std::string path = {});
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(const std::vector<std::string>& cols);
  void row(const std::vector<std::string>& cells);

  // Flushes buffered content to the file (no-op for in-memory writers).
  void flush();

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  // RFC-4180 quoting of a single cell.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  void emit_line(const std::vector<std::string>& cells);

  std::string path_;
  std::string buffer_;
  bool ok_ = true;
};

}  // namespace secbus::util
