#include "util/fileio.hpp"

#include <cstdio>

namespace secbus::util {

namespace {

bool fail(std::string* error, const std::string& path, const char* message) {
  if (error != nullptr && error->empty()) {
    *error = path + ": " + message;
  }
  return false;
}

}  // namespace

bool read_file(const std::string& path, std::string& out,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, path, "cannot open file");
  out.clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return fail(error, path, "read error");
  return true;
}

bool write_file(const std::string& path, std::string_view text,
                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(error, path, "cannot open file for writing");
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return fail(error, path, "write error");
  return true;
}

}  // namespace secbus::util
