// Whole-file read/write helpers.
//
// Campaign files, shard result files, JSONL checkpoints and the CLI's
// report emission all slurp or dump whole small files; this is the one
// implementation of that loop (fix EINTR/errno handling here, everywhere).
#pragma once

#include <string>
#include <string_view>

namespace secbus::util {

// Reads the entire file into `out`. False on open/read failure, with
// "<path>: message" stored through `error` when non-null.
bool read_file(const std::string& path, std::string& out,
               std::string* error = nullptr);

// Writes `text`, truncating any existing file. False on open/write failure.
bool write_file(const std::string& path, std::string_view text,
                std::string* error = nullptr);

}  // namespace secbus::util
