#include "util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace secbus::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex, bool* ok) {
  std::vector<std::uint8_t> out;
  if (ok != nullptr) *ok = true;
  if (hex.size() % 2 != 0) {
    if (ok != nullptr) *ok = false;
    return {};
  }
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      if (ok != nullptr) *ok = false;
      return {};
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string hexdump(std::span<const std::uint8_t> bytes, std::uint64_t base_addr) {
  std::string out;
  char line[128];
  for (std::size_t off = 0; off < bytes.size(); off += 16) {
    const std::size_t n = std::min<std::size_t>(16, bytes.size() - off);
    int pos = std::snprintf(line, sizeof(line), "%08llx  ",
                            static_cast<unsigned long long>(base_addr + off));
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        pos += std::snprintf(line + pos, sizeof(line) - static_cast<std::size_t>(pos),
                             "%02x ", bytes[off + i]);
      } else {
        pos += std::snprintf(line + pos, sizeof(line) - static_cast<std::size_t>(pos),
                             "   ");
      }
      if (i == 7) {
        line[pos++] = ' ';
        line[pos] = '\0';
      }
    }
    pos += std::snprintf(line + pos, sizeof(line) - static_cast<std::size_t>(pos), " |");
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char c = bytes[off + i];
      line[pos++] = std::isprint(c) != 0 ? static_cast<char>(c) : '.';
    }
    line[pos++] = '|';
    line[pos] = '\0';
    out += line;
    out.push_back('\n');
  }
  return out;
}

}  // namespace secbus::util
