// Hex encoding/decoding helpers for crypto test vectors and debug dumps.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace secbus::util {

// Lower-case hex encoding of a byte span ("deadbeef").
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

// Parses a hex string (even length, case-insensitive, no separators) into
// bytes. Returns an empty vector on malformed input with `ok` set to false.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex, bool* ok = nullptr);

// Classic offset + hex + ASCII dump, 16 bytes per line, for debugging memory
// images in examples.
[[nodiscard]] std::string hexdump(std::span<const std::uint8_t> bytes,
                                  std::uint64_t base_addr = 0);

}  // namespace secbus::util
