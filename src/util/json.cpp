#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace secbus::util {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.dbl_ = v;
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.int_exact_ = true;
  j.mag_ = v;
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.int_exact_ = true;
  j.neg_ = v < 0;
  j.mag_ = j.neg_ ? ~static_cast<std::uint64_t>(v) + 1
                  : static_cast<std::uint64_t>(v);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

double Json::as_double() const noexcept {
  if (!int_exact_) return dbl_;
  const double mag = static_cast<double>(mag_);
  return neg_ ? -mag : mag;
}

bool Json::to_u64(std::uint64_t& out) const noexcept {
  if (kind_ != Kind::kNumber || !int_exact_ || neg_) return false;
  out = mag_;
  return true;
}

bool Json::to_i64(std::int64_t& out) const noexcept {
  if (kind_ != Kind::kNumber || !int_exact_) return false;
  if (neg_) {
    if (mag_ > 0x8000'0000'0000'0000ULL) return false;
    out = static_cast<std::int64_t>(~mag_ + 1);
  } else {
    if (mag_ > 0x7FFF'FFFF'FFFF'FFFFULL) return false;
    out = static_cast<std::int64_t>(mag_);
  }
  return true;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string Json::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; emit null like most writers
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.15g", v);
  if (std::strtod(shorter, nullptr) == v) {
    out += shorter;
  } else {
    out += buf;
  }
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (int_exact_) {
        if (neg_) out += '-';
        char buf[24];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(mag_));
        out += buf;
      } else {
        append_double(out, dbl_);
      }
      break;
    case Kind::kString:
      out += quote(str_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        newline_indent(depth + 1);
        item.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const Member& m : object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(depth + 1);
        out += quote(m.first);
        out += indent > 0 ? ": " : ":";
        m.second.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Json& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  bool fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "line " + std::to_string(line_) + ", column " +
                std::to_string(col_) + ": " + message;
    }
    return false;
  }

  bool expect(char c) {
    if (at_end() || peek() != c) {
      return fail(std::string("expected '") + c + "'");
    }
    advance();
    return true;
  }

  bool literal(const char* word, Json value, Json& out) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (at_end() || peek() != *p) return fail("invalid literal");
      advance();
    }
    out = std::move(value);
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return literal("null", Json::null(), out);
      case 't': return literal("true", Json::boolean(true), out);
      case 'f': return literal("false", Json::boolean(false), out);
      case '"': return parse_string_value(out);
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_array(Json& out, int depth) {
    advance();  // '['
    out = Json::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      advance();
      return true;
    }
    while (true) {
      Json item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      out.push(std::move(item));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == ']') {
        advance();
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Json& out, int depth) {
    advance();  // '{'
    out = Json::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      // Duplicate keys are a spec error in campaign files; reject early so
      // a typo'd second value can't silently win.
      if (out.find(key) != nullptr) {
        return fail("duplicate object key \"" + key + "\"");
      }
      out.members().emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == '}') {
        advance();
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_string_value(Json& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Json::string(std::move(s));
    return true;
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return fail("truncated \\u escape");
      const char c = advance();
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("invalid \\u escape digit");
    }
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    advance();  // '"'
    out.clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = advance();
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("truncated escape");
      const char e = advance();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (at_end() || peek() != '\\') return fail("unpaired surrogate");
            advance();
            if (at_end() || peek() != 'u') return fail("unpaired surrogate");
            advance();
            std::uint32_t low = 0;
            if (!hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    bool neg = false;
    if (!at_end() && peek() == '-') {
      neg = true;
      advance();
    }
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail("invalid number");
    }
    bool int_overflow = false;
    std::uint64_t mag = 0;
    if (peek() == '0') {
      advance();
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        return fail("leading zero in number");
      }
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        const std::uint64_t digit = static_cast<std::uint64_t>(advance() - '0');
        if (mag > (0xFFFF'FFFF'FFFF'FFFFULL - digit) / 10) {
          int_overflow = true;
        } else {
          mag = mag * 10 + digit;
        }
      }
    }
    bool is_int = !int_overflow;
    if (!at_end() && peek() == '.') {
      is_int = false;
      advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_int = false;
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (is_int && neg && mag > 0x8000'0000'0000'0000ULL) is_int = false;
    if (is_int) {
      if (neg) {
        out = Json::number(static_cast<std::int64_t>(~mag + 1));
      } else {
        out = Json::number(mag);
      }
      return true;
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    out = Json::number(std::strtod(lexeme.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

bool Json::parse(std::string_view text, Json& out, std::string* error) {
  if (error != nullptr) error->clear();
  Parser p(text, error);
  Json value;
  if (!p.run(value)) {
    if (error != nullptr && error->empty()) *error = "invalid JSON";
    return false;
  }
  out = std::move(value);
  return true;
}

}  // namespace secbus::util
