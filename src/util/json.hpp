// Dependency-free JSON value, parser and writer.
//
// The campaign subsystem declares whole experiment grids in JSON files, so
// the simulator needs to read and emit JSON without dragging in an external
// library. This is a small, strict RFC-8259 implementation with two
// properties the campaign files rely on:
//   * object members keep insertion order (stable, diffable emission), and
//   * integers up to the full uint64 range round-trip exactly (workload
//     seeds are SplitMix64 outputs, which double would silently mangle).
// Parse errors carry line:column positions; path-aware error messages are
// layered on top by campaign/spec_io.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace secbus::util {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;  // insertion-ordered

  Json() = default;  // null

  // --- constructors ------------------------------------------------------
  [[nodiscard]] static Json null() { return Json(); }
  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json number(std::uint64_t v);
  [[nodiscard]] static Json number(std::int64_t v);
  [[nodiscard]] static Json string(std::string v);
  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  // Number parsed from an integer lexeme (no fraction/exponent) that fits
  // the int64/uint64 range; such numbers round-trip bit-exactly.
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == Kind::kNumber && int_exact_;
  }

  // --- value access (callers check the kind first) ------------------------
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept;
  // False when not an integer-exact number in the target range.
  [[nodiscard]] bool to_u64(std::uint64_t& out) const noexcept;
  [[nodiscard]] bool to_i64(std::int64_t& out) const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& items() const noexcept { return array_; }
  [[nodiscard]] Array& items() noexcept { return array_; }
  [[nodiscard]] const Object& members() const noexcept { return object_; }
  [[nodiscard]] Object& members() noexcept { return object_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return kind_ == Kind::kArray ? array_.size() : object_.size();
  }

  // --- building -----------------------------------------------------------
  // Appends (or replaces) a member; keeps this value an object.
  Json& set(std::string key, Json value);
  // Appends to an array; keeps this value an array.
  Json& push(Json value);
  // First member with `key`; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  // --- text ---------------------------------------------------------------
  // Strict parse of a complete JSON document (trailing whitespace allowed).
  // On failure returns false and, when `error` is non-null, stores a
  // "line L, column C: message" description.
  [[nodiscard]] static bool parse(std::string_view text, Json& out,
                                  std::string* error = nullptr);

  // Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  // RFC-8259 string escaping of `s` (quotes included).
  [[nodiscard]] static std::string quote(std::string_view s);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  // Numbers: `int_exact_` numbers live in (neg_, mag_); others in dbl_.
  bool int_exact_ = false;
  bool neg_ = false;
  std::uint64_t mag_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  Array array_;
  Object object_;
};

}  // namespace secbus::util
