#include "util/jsonl.hpp"

#include <cerrno>
#include <cstring>

#include "util/fileio.hpp"

namespace secbus::util {

namespace {

// One loud line per failure. errno is only trustworthy immediately after
// the failed stdio call, so callers capture it before anything else runs.
void report_write_failure(const std::string& path, const char* what,
                          int err) {
  std::fprintf(stderr, "jsonl: %s failed for %s: %s\n", what, path.c_str(),
               err != 0 ? std::strerror(err) : "short write");
}

}  // namespace

bool JsonlWriter::open(const std::string& path) {
  close();
  path_ = path;
  // A previous writer may have died mid-record, leaving the file without a
  // trailing newline; terminate the fragment so the next append starts on
  // its own line (the replayer skips the now-isolated bad line).
  bool needs_newline = false;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    if (std::fseek(probe, -1, SEEK_END) == 0) {
      needs_newline = std::fgetc(probe) != '\n';
    }
    std::fclose(probe);
  }
  errno = 0;
  file_ = std::fopen(path.c_str(), "ab");
  ok_ = file_ != nullptr;
  if (!ok_) {
    report_write_failure(path_, "open", errno);
    return false;
  }
  if (needs_newline) {
    errno = 0;
    ok_ = std::fputc('\n', file_) == '\n' && std::fflush(file_) == 0;
    if (!ok_) report_write_failure(path_, "torn-tail weld", errno);
  }
  return ok_;
}

bool JsonlWriter::append(const Json& value) {
  if (file_ == nullptr || !ok_) return false;
  std::string line = value.dump(0);
  line += '\n';
  errno = 0;
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  ok_ = written == line.size() && std::fflush(file_) == 0;
  if (!ok_) {
    // A short fwrite with errno unset still means the record is torn on
    // disk; the reader will skip the fragment, but the *writer* must not
    // pretend the record landed.
    report_write_failure(path_, written == line.size() ? "flush" : "write",
                         errno);
  }
  return ok_;
}

void JsonlWriter::close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && ok_) {
      // fclose can surface the final buffered-write failure (NFS, ENOSPC
      // discovered late); too late to fail the append, not too late to say.
      report_write_failure(path_, "close", errno);
    }
    file_ = nullptr;
  }
}

bool read_jsonl(const std::string& path, std::vector<Json>& out,
                std::string* error) {
  std::string text;
  if (!read_file(path, text, error)) return false;

  out.clear();
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    Json value;
    // Records are independent: a line that doesn't parse is a crash
    // fragment (torn tail, or a welded-over tear from an earlier resume) —
    // skip it and keep replaying. A complete record whose newline never
    // made it out parses fine and is kept.
    if (Json::parse(line, value)) out.push_back(std::move(value));
  }
  return true;
}

}  // namespace secbus::util
