// Crash-safe JSON-Lines append and replay.
//
// Campaign shard workers checkpoint every completed job as one compact JSON
// record per line. Appends go straight to disk (fflush per record), so a
// killed worker loses at most the record it was writing; the reader treats
// a torn trailing line as "the crash point" and replays everything before
// it. That pair of properties is what makes 10k-job campaigns interruptible
// without a database.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace secbus::util {

// Append-mode writer: one compact JSON document per line, flushed per
// append. Thread-compatible, not thread-safe — callers that append from a
// worker pool serialize externally (see campaign::CheckpointWriter).
class JsonlWriter {
 public:
  JsonlWriter() = default;
  ~JsonlWriter() { close(); }

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  // Opens `path` for appending (creating it if missing). If the file ends
  // in a torn record from a crashed writer (no trailing newline), a
  // newline is welded on first so new records never fuse with the
  // fragment. Returns false and leaves the writer closed on failure.
  bool open(const std::string& path);

  // Writes `value` as a single compact line and flushes. False once any
  // write has failed (the writer stays failed until reopened). The first
  // failure — a short fwrite or a failed fflush, i.e. the kernel refusing
  // bytes (ENOSPC, EDQUOT, a yanked mount) — is reported loudly on stderr
  // with the path and errno; silently shrugging it off would let a
  // "crash-safe" log lose records with no trace.
  bool append(const Json& value);

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  bool ok_ = true;
};

// Replays a JSONL file into `out`. Malformed lines are *skipped*, not
// fatal: records are independent, and a crash/resume/crash sequence leaves
// torn fragments in the middle of the file — every complete record around
// them must still replay (a skipped checkpoint record merely re-runs that
// job). Returns false only when the file cannot be opened or read at all;
// a missing file is reported through `error` too (callers treat it as "no
// checkpoint yet").
bool read_jsonl(const std::string& path, std::vector<Json>& out,
                std::string* error = nullptr);

}  // namespace secbus::util
