#include "util/log.hpp"

namespace secbus::util {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::logf(LogLevel level, const char* tag, const char* fmt, ...) noexcept {
  if (!enabled(level)) return;
  if (static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn)) ++warn_count_;
  std::FILE* out = stream_ != nullptr ? stream_ : stderr;
  std::fprintf(out, "[%-5s] %-18s ", to_string(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out, fmt, args);
  va_end(args);
  std::fputc('\n', out);
}

}  // namespace secbus::util
