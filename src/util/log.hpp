// Minimal leveled logger.
//
// The simulator is library-first: logging defaults to warnings-and-above on
// stderr so that tests and benches stay quiet, and examples can turn on Info/
// Debug to narrate what the firewalls are doing. No global locking is needed:
// the simulation kernel is single-threaded by design (determinism), and
// benches that parallelize do so across process-local kernels.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace secbus::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

class Logger {
 public:
  // Process-wide logger used by all components.
  static Logger& instance() noexcept;

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  // Redirect output (defaults to stderr). The stream is not owned.
  void set_stream(std::FILE* stream) noexcept { stream_ = stream; }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  // printf-style logging; `tag` identifies the emitting component.
  void logf(LogLevel level, const char* tag, const char* fmt, ...) noexcept
      __attribute__((format(printf, 4, 5)));

  // Number of messages emitted at kWarn or above (tests assert on this).
  [[nodiscard]] unsigned long warn_count() const noexcept { return warn_count_; }
  void reset_counters() noexcept { warn_count_ = 0; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::FILE* stream_ = nullptr;  // nullptr means stderr
  unsigned long warn_count_ = 0;
};

}  // namespace secbus::util

#define SECBUS_LOG(level, tag, ...)                                       \
  do {                                                                    \
    auto& secbus_logger = ::secbus::util::Logger::instance();             \
    if (secbus_logger.enabled(level)) {                                   \
      secbus_logger.logf((level), (tag), __VA_ARGS__);                    \
    }                                                                     \
  } while (false)

#define SECBUS_TRACE(tag, ...) \
  SECBUS_LOG(::secbus::util::LogLevel::kTrace, tag, __VA_ARGS__)
#define SECBUS_DEBUG(tag, ...) \
  SECBUS_LOG(::secbus::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define SECBUS_INFO(tag, ...) \
  SECBUS_LOG(::secbus::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define SECBUS_WARN(tag, ...) \
  SECBUS_LOG(::secbus::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define SECBUS_ERROR(tag, ...) \
  SECBUS_LOG(::secbus::util::LogLevel::kError, tag, __VA_ARGS__)
