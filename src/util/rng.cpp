#include "util/rng.hpp"

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace secbus::util {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  SECBUS_ASSERT(bound != 0, "below() requires a nonzero bound");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  SECBUS_ASSERT(lo <= hi, "range() requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next();
  return lo + below(span + 1);
}

double Xoshiro256::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Xoshiro256::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    store_le64(out.data() + i, next());
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t tail = next();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(tail);
      tail >>= 8;
    }
  }
}

std::size_t Xoshiro256::weighted_pick(std::span<const double> weights) noexcept {
  SECBUS_ASSERT(!weights.empty(), "weighted_pick() requires at least one weight");
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return below(weights.size());
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bucket
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
      0x39109BB02ACBE635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256 Xoshiro256::substream(unsigned n) const noexcept {
  Xoshiro256 copy = *this;
  for (unsigned i = 0; i <= n; ++i) copy.long_jump();
  return copy;
}

}  // namespace secbus::util
