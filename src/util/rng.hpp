// Deterministic pseudo-random number generation for the simulator.
//
// Everything in secbus is reproducible: a simulation seeded with the same
// 64-bit seed produces bit-identical traces. We use xoshiro256** (public
// domain, Blackman & Vigna) seeded through SplitMix64, rather than
// std::mt19937, because its state is small, it is fast, and its output is
// stable across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace secbus::util {

// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// xoshiro256** 1.0 generator with convenience distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words via SplitMix64 so that any seed (including 0)
  // yields a valid, well-mixed state.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  // Raw 64 bits of output.
  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next(); }

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  // method (unbiased). bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  // Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  // Fills a byte span with random data (used for payloads and keys).
  void fill(std::span<std::uint8_t> out) noexcept;

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Zero-total weights fall back to uniform choice.
  [[nodiscard]] std::size_t weighted_pick(std::span<const double> weights) noexcept;

  // Long-jump: advances the state by 2^192 steps, giving an independent
  // stream; used to derive per-component generators from one master seed.
  void long_jump() noexcept;

  // Derives the n-th independent substream from this generator's current
  // state without perturbing it.
  [[nodiscard]] Xoshiro256 substream(unsigned n) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace secbus::util
