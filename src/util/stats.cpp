#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace secbus::util {

void RunningStat::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::reset() noexcept { *this = RunningStat{}; }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStat::Snapshot RunningStat::snapshot() const noexcept {
  Snapshot snap;
  snap.count = n_;
  if (n_ == 0) return snap;  // min/max are +/-inf sentinels; don't leak them
  snap.mean = mean_;
  snap.m2 = m2_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

void RunningStat::restore(const Snapshot& snap) noexcept {
  reset();
  if (snap.count == 0) return;
  n_ = snap.count;
  mean_ = snap.mean;
  m2_ = snap.m2;
  sum_ = snap.sum;
  min_ = snap.min;
  max_ = snap.max;
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  SECBUS_ASSERT(hi > lo, "histogram range must be non-empty");
  SECBUS_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(total_);
  double running = static_cast<double>(underflow_);
  if (target <= running) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - running) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    running = next;
  }
  return hi_;
}

void LatencyHistogram::ensure_capacity(std::uint64_t value) {
  if (value < counts_.size()) return;
  std::size_t cap = counts_.empty() ? 512 : counts_.size();
  while (cap <= value) cap *= 2;
  if (cap > kTrackedMax) cap = kTrackedMax;
  counts_.resize(cap, 0);
}

void LatencyHistogram::add(std::uint64_t cycles) {
  ++count_;
  sum_ += cycles;
  min_ = std::min(min_, cycles);
  max_ = std::max(max_, cycles);
  if (cycles >= kTrackedMax) {
    ++overflow_;
    return;
  }
  ensure_capacity(cycles);
  ++counts_[cycles];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (!other.counts_.empty()) {
    ensure_capacity(other.counts_.size() - 1);
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
}

void LatencyHistogram::reset() noexcept { *this = LatencyHistogram{}; }

void LatencyHistogram::restore(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& cycle_counts,
    std::uint64_t overflow, std::uint64_t count, std::uint64_t sum,
    std::uint64_t min, std::uint64_t max) {
  reset();
  for (const auto& [cycle, n] : cycle_counts) {
    SECBUS_ASSERT(cycle < kTrackedMax && n > 0,
                  "histogram restore: bad bucket");
    ensure_capacity(cycle);
    counts_[cycle] += n;
  }
  overflow_ = overflow;
  count_ = count;
  sum_ = sum;
  if (count_ > 0) {
    min_ = min;
    max_ = max;
  }
}

double LatencyHistogram::mean() const noexcept {
  return count_ > 0
             ? static_cast<double>(sum_) / static_cast<double>(count_)
             : 0.0;
}

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    cumulative += counts_[c];
    if (cumulative >= rank) return c;
  }
  return max_;  // rank lands among the overflow samples
}

double percent_overhead(double num, double den) noexcept {
  if (den == 0.0) return 0.0;
  return 100.0 * (num / den - 1.0);
}

double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace secbus::util
