// Statistics primitives used across the simulator: counters, running moments,
// and fixed-bucket histograms. All integer-cycle oriented and allocation-free
// on the hot path.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace secbus::util {

// Monotonic event counter with a name (for reports).
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  void reset() noexcept { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

// Streaming mean/variance/min/max via Welford's algorithm.
class RunningStat {
 public:
  // Exact internal state, exposed so results can cross a process boundary
  // (shard result files / checkpoints) and merge bit-identically afterwards.
  // `restore(snapshot())` reproduces the stat down to the last mantissa bit;
  // min/max are meaningless (and not finite) when count == 0.
  struct Snapshot {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x) noexcept;
  void reset() noexcept;

  // Folds `other` into this stat as if every one of its samples had been
  // add()ed here (Chan et al. parallel-variance combine). Lets the batch
  // runner merge per-CPU / per-job moments without re-streaming samples.
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] Snapshot snapshot() const noexcept;
  void restore(const Snapshot& snap) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width-bucket histogram over [lo, hi); samples outside the range land
// in saturating under/overflow buckets. Supports percentile queries, which
// the latency benches use for p50/p95/p99 reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  // Linear-interpolated percentile estimate, q in [0, 100]. Returns 0 when
  // empty. Under/overflow samples clamp to the range edges.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// Integer-cycle latency histogram: 1-cycle buckets over [0, kTrackedMax)
// plus a saturating overflow bucket. Unlike the interpolating Histogram
// above, percentile extraction is *exact* (nearest-rank over the recorded
// integer samples) for every value below kTrackedMax; samples at or above
// it saturate and report the exact tracked maximum instead. Mergeable, so
// per-IP histograms fold into per-job and per-batch ones without losing
// the tail. Bucket storage is allocated lazily and grows in powers of two,
// keeping short-latency runs cheap.
class LatencyHistogram {
 public:
  // Latencies up to 16k cycles are tracked exactly; anything slower (deeply
  // congested fabrics, pathological floods) saturates into overflow.
  static constexpr std::uint64_t kTrackedMax = 16384;

  void add(std::uint64_t cycles);
  void merge(const LatencyHistogram& other);
  void reset() noexcept;

  // Bucket table for cross-process result shipping: buckets() exposes the
  // raw per-cycle counts (index = latency in cycles; trailing capacity may
  // be zero), restore() rebuilds the histogram from sparse (cycle, count)
  // pairs plus the overflow-bucket population. All derived state (count,
  // sum, min, max) is recomputed except the overflow contribution to
  // sum/min/max, which the saturating bucket cannot recover — callers pass
  // the original sum/min/max alongside.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }
  void restore(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                   cycle_counts,
               std::uint64_t overflow, std::uint64_t count, std::uint64_t sum,
               std::uint64_t min, std::uint64_t max);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  // Exact sum of every recorded latency, overflow samples included (their
  // true values, not the saturated bucket) — mean() = sum()/count().
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ > 0 ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return count_ > 0 ? max_ : 0;
  }
  [[nodiscard]] double mean() const noexcept;

  // Nearest-rank percentile, q in [0, 100]: the smallest recorded latency L
  // such that at least ceil(q/100 * count) samples are <= L. Returns 0 when
  // empty; returns max() when the rank lands in the overflow bucket.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
  [[nodiscard]] std::uint64_t p50() const noexcept { return percentile(50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return percentile(95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return percentile(99); }

 private:
  void ensure_capacity(std::uint64_t value);

  std::vector<std::uint64_t> counts_;  // counts_[c] = samples of c cycles
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

// Ratio helper: returns 100*(num/den - 1), i.e. percentage overhead of `num`
// relative to baseline `den`; 0 when den == 0.
[[nodiscard]] double percent_overhead(double num, double den) noexcept;

// Returns num/den, 0 when den == 0 (used when summarizing empty runs).
[[nodiscard]] double safe_ratio(double num, double den) noexcept;

}  // namespace secbus::util
