#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace secbus::util {

void TextTable::set_header(std::vector<std::string> header) {
  SECBUS_ASSERT(rows_.empty(), "set_header() must precede add_row()");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.empty() ? row.size() : header_.size());
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_separator() {
  if (!rows_.empty()) rows_.back().separator_after = true;
}

std::string TextTable::render() const {
  const std::size_t ncols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().cells.size())
                      : header_.size();
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c < header_.size()) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      if (c < row.cells.size()) widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream out;
  auto emit_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  auto emit_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      // First column left-aligned (names), the rest right-aligned (numbers).
      if (c == 0) {
        out << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ');
      } else {
        out << ' ' << std::string(widths[c] - cell.size(), ' ') << cell << ' ';
      }
      out << '|';
    }
    out << '\n';
  };

  if (!caption_.empty()) out << caption_ << '\n';
  emit_rule();
  if (!header_.empty()) {
    emit_cells(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    emit_cells(row.cells);
    if (row.separator_after) emit_rule();
  }
  emit_rule();
  return out.str();
}

void TextTable::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

std::string TextTable::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::fmt_thousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(digits[i]);
    const std::size_t remaining = n - 1 - i;
    if (remaining > 0 && remaining % 3 == 0) out.push_back(',');
  }
  return out;
}

std::string TextTable::fmt_percent(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", prec, v);
  return buf;
}

}  // namespace secbus::util
