// Plain-text table rendering for the bench harnesses.
//
// Every bench prints the paper's table rows next to measured values; this
// helper keeps the formatting consistent (column alignment, separators, and a
// caption line matching the paper's table number).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace secbus::util {

class TextTable {
 public:
  explicit TextTable(std::string caption = {}) : caption_(std::move(caption)) {}

  // Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  // Appends a data row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  // Inserts a horizontal separator after the most recently added row.
  void add_separator();

  // Renders the full table to a string (caption, header, rows).
  [[nodiscard]] std::string render() const;

  // Convenience: renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  // Formats a double with `prec` digits after the decimal point.
  [[nodiscard]] static std::string fmt(double v, int prec = 2);
  // Formats an integer with thousands separators (12,895 style, as the
  // paper's Table I prints area numbers).
  [[nodiscard]] static std::string fmt_thousands(std::uint64_t v);
  // Formats a signed percentage with a leading + or - (e.g. "+13.43%").
  [[nodiscard]] static std::string fmt_percent(double v, int prec = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_after = false;
  };

  std::string caption_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace secbus::util
