#include "area/cost_model.hpp"

#include <gtest/gtest.h>

#include "area/report.hpp"

namespace secbus::area {
namespace {

SocDescription section5() {
  SocDescription soc;
  soc.processors = 3;
  soc.dedicated_ips = 1;
  soc.internal_bram = true;
  soc.external_ddr = true;
  return soc;
}

TEST(AreaVector, Arithmetic) {
  const AreaVector a{1, 2, 3, 4};
  const AreaVector b{10, 20, 30, 40};
  EXPECT_EQ(a + b, (AreaVector{11, 22, 33, 44}));
  EXPECT_EQ(a * 3, (AreaVector{3, 6, 9, 12}));
  AreaVector c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(CostModel, PaperComponentRowsVerbatim) {
  // Table I component rows.
  EXPECT_EQ(kSecurityBuilder, (AreaVector{0, 393, 393, 0}));
  EXPECT_EQ(kConfidentialityCore, (AreaVector{436, 986, 344, 10}));
  EXPECT_EQ(kIntegrityCore, (AreaVector{1224, 1404, 1704, 0}));
  EXPECT_EQ(kLocalFirewall, (AreaVector{8, 403, 403, 0}));
}

TEST(CostModel, BaseSystemMatchesPaperWithoutFirewallsRow) {
  const AreaVector base = base_system(section5());
  EXPECT_EQ(base, (AreaVector{12895, 11474, 15473, 53}));
}

TEST(CostModel, FullSystemMatchesPaperWithFirewallsRow) {
  SocDescription soc = section5();
  soc.with_firewalls = true;
  const AreaVector total = total_system(soc);
  EXPECT_EQ(total, (AreaVector{15833, 19554, 21530, 63}));
}

TEST(CostModel, WithoutFirewallsFlagDropsAdditions) {
  SocDescription soc = section5();
  soc.with_firewalls = false;
  EXPECT_EQ(total_system(soc), base_system(soc));
}

TEST(CostModel, LfCountMatchesFigureOneWiring) {
  // One LF per internal resource: 3 CPUs + 1 dedicated IP + 1 BRAM.
  EXPECT_EQ(section5().lf_count(), 5u);
  SocDescription no_bram = section5();
  no_bram.internal_bram = false;
  EXPECT_EQ(no_bram.lf_count(), 4u);
}

TEST(CostModel, BramDominatedByCc) {
  // The CC's 10 BRAMs are the only BRAM addition: 53 -> 63 (paper: +18.87%).
  const AreaVector additions = security_additions(section5());
  EXPECT_EQ(additions.brams, 10u);
}

TEST(CostModel, CcPlusIcDominateLcf) {
  // Paper: "most of the area is devoted to the confidentiality and
  // Integrity Cores (about 90% of Local Ciphering Firewall area)".
  const AreaVector lcf = ciphering_firewall(kCalibratedRules);
  const AreaVector cores = kConfidentialityCore + kIntegrityCore;
  const double frac = static_cast<double>(cores.slice_regs + cores.slice_luts) /
                      static_cast<double>(lcf.slice_regs + lcf.slice_luts);
  EXPECT_GT(frac, 0.70);
}

TEST(CostModel, RuleScalingGrowsMonotonically) {
  AreaVector prev = local_firewall(1);
  for (std::size_t rules = 2; rules <= 64; rules *= 2) {
    const AreaVector cur = local_firewall(rules);
    EXPECT_GE(cur.slice_luts, prev.slice_luts);
    EXPECT_GE(cur.brams, prev.brams);
    prev = cur;
  }
}

TEST(CostModel, RuleScalingRates) {
  // +28 LUTs per rule beyond 4.
  const AreaVector at4 = local_firewall_bare(4);
  const AreaVector at6 = local_firewall_bare(6);
  EXPECT_EQ(at6.slice_luts - at4.slice_luts, 2 * 28u);
  // Config-memory BRAM appears beyond 8 rules.
  EXPECT_EQ(local_firewall_bare(8).brams, 0u);
  EXPECT_EQ(local_firewall_bare(9).brams, 1u);
  EXPECT_EQ(local_firewall_bare(8 + 64).brams, 1u);
  EXPECT_EQ(local_firewall_bare(8 + 65).brams, 2u);
}

TEST(CostModel, AdditionsScaleWithProcessorCount) {
  SocDescription two = section5();
  two.processors = 2;
  SocDescription four = section5();
  four.processors = 4;
  const AreaVector delta =
      security_additions(four) + AreaVector{} ;
  EXPECT_GT(security_additions(four).slice_luts,
            security_additions(two).slice_luts);
  // Exactly two more LF instances.
  const AreaVector diff{
      security_additions(four).slice_regs - security_additions(two).slice_regs,
      security_additions(four).slice_luts - security_additions(two).slice_luts,
      security_additions(four).lut_ff_pairs -
          security_additions(two).lut_ff_pairs,
      security_additions(four).brams - security_additions(two).brams};
  EXPECT_EQ(diff, local_firewall(kCalibratedRules) * 2);
  (void)delta;
}

TEST(Table1Report, ContainsPaperAndModelRows) {
  SocDescription soc = section5();
  const std::string table = render_table1(soc);
  EXPECT_NE(table.find("12,895"), std::string::npos);
  EXPECT_NE(table.find("15,833"), std::string::npos);
  EXPECT_NE(table.find("Confidentiality Core"), std::string::npos);
  EXPECT_NE(table.find("+13.43%"), std::string::npos);  // paper's printed row
  EXPECT_NE(table.find("Overhead (model)"), std::string::npos);
}

TEST(Table1Report, CsvParsesAsExpected) {
  const std::string csv = table1_csv(section5());
  EXPECT_NE(csv.find("component,slice_regs"), std::string::npos);
  EXPECT_NE(csv.find("generic_without_firewalls,12895,11474,15473,53"),
            std::string::npos);
  EXPECT_NE(csv.find("generic_with_firewalls,15833,19554,21530,63"),
            std::string::npos);
}

}  // namespace
}  // namespace secbus::area
