// External-memory attack scenarios across protection levels — the executable
// form of the paper's Section III threat analysis.
#include <gtest/gtest.h>

#include "attack/campaign.hpp"

namespace secbus::attack {
namespace {

using soc::ProtectionLevel;

// Full protection (CM=cipher, IM=hash tree): every attack class detected,
// the victim's read aborts instead of returning corrupted data.
class FullProtectionSweep
    : public ::testing::TestWithParam<ExternalAttackKind> {};

TEST_P(FullProtectionSweep, AttackDetectedAndDataDiscarded) {
  const auto result =
      run_external_scenario(GetParam(), ProtectionLevel::kFull, 42);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected) << result.scenario;
  EXPECT_TRUE(result.victim_read_aborted);
  EXPECT_FALSE(result.victim_data_intact);
  EXPECT_GT(result.total_alerts, 0u);
  EXPECT_TRUE(result.workload_completed);
  // Detection happens on the next read of the tampered line, well after the
  // tamper itself: latency is positive and bounded by the scenario length.
  EXPECT_GT(result.detection_latency, 0u);
  EXPECT_LT(result.detection_latency, 300'000u);
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, FullProtectionSweep,
                         ::testing::Values(ExternalAttackKind::kSpoof,
                                           ExternalAttackKind::kReplay,
                                           ExternalAttackKind::kRelocation,
                                           ExternalAttackKind::kDosCorruption),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// Cipher-only (the paper's "only ciphered" memory): tampering is NOT
// detected, but the attacker gets DoS, not data control — reads return
// garbage rather than attacker-chosen or stale plaintext.
class CipherOnlySweep : public ::testing::TestWithParam<ExternalAttackKind> {};

TEST_P(CipherOnlySweep, UndetectedButGarbled) {
  const auto result =
      run_external_scenario(GetParam(), ProtectionLevel::kCipherOnly, 42);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_FALSE(result.detected) << result.scenario;
  EXPECT_EQ(result.total_alerts, 0u);
  EXPECT_FALSE(result.victim_read_aborted);   // no integrity layer
  EXPECT_FALSE(result.victim_data_intact);    // ... but data is garbage (DoS)
  EXPECT_TRUE(result.workload_completed);
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, CipherOnlySweep,
                         ::testing::Values(ExternalAttackKind::kSpoof,
                                           ExternalAttackKind::kReplay,
                                           ExternalAttackKind::kRelocation,
                                           ExternalAttackKind::kDosCorruption),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// Plaintext (the paper's unprotected region): attacks succeed silently.
TEST(PlaintextScenarios, SpoofSucceedsSilently) {
  const auto result = run_external_scenario(ExternalAttackKind::kSpoof,
                                            ProtectionLevel::kPlaintext, 42);
  EXPECT_FALSE(result.detected);
  EXPECT_FALSE(result.victim_read_aborted);
  EXPECT_FALSE(result.victim_data_intact);  // attacker-chosen bytes
}

TEST(PlaintextScenarios, ReplayDeliversStaleData) {
  const auto result = run_external_scenario(ExternalAttackKind::kReplay,
                                            ProtectionLevel::kPlaintext, 42);
  EXPECT_FALSE(result.detected);
  // The victim reads its *old* data as if current: classic replay win.
  EXPECT_FALSE(result.victim_data_intact);
  EXPECT_FALSE(result.victim_read_aborted);
}

TEST(PlaintextScenarios, RelocationMovesValidData) {
  const auto result = run_external_scenario(ExternalAttackKind::kRelocation,
                                            ProtectionLevel::kPlaintext, 42);
  EXPECT_FALSE(result.detected);
  EXPECT_FALSE(result.victim_data_intact);
}

TEST(ExternalScenarios, DeterministicAcrossRuns) {
  const auto a =
      run_external_scenario(ExternalAttackKind::kSpoof, ProtectionLevel::kFull, 7);
  const auto b =
      run_external_scenario(ExternalAttackKind::kSpoof, ProtectionLevel::kFull, 7);
  EXPECT_EQ(a.detection_cycle, b.detection_cycle);
  EXPECT_EQ(a.total_alerts, b.total_alerts);
}

TEST(ExternalScenarios, DetectionLatencyVariesWithSeed) {
  // Different background traffic shifts when the victim's read lands; the
  // scenario machinery must still detect in every case.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto result = run_external_scenario(ExternalAttackKind::kSpoof,
                                              ProtectionLevel::kFull, seed);
    EXPECT_TRUE(result.detected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace secbus::attack
