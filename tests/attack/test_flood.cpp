// Traffic-flood DoS scenarios (Section III.A: "injecting dummy data to
// create overwhelming traffic").
#include <gtest/gtest.h>

#include "attack/campaign.hpp"
#include "attack/flood_master.hpp"

namespace secbus::attack {
namespace {

TEST(Flood, InPolicyFloodDegradesVictimLatency) {
  const FloodResult r = run_flood_scenario(/*in_policy=*/true, 42);
  EXPECT_TRUE(r.workload_completed);
  // The flooder's traffic is legal: it competes for the bus and hurts the
  // victim's latency.
  EXPECT_GT(r.flood_completed, 0u);
  EXPECT_EQ(r.flood_blocked, 0u);
  EXPECT_GT(r.bus_occupancy_flooded, r.bus_occupancy_baseline);
  EXPECT_GT(r.victim_latency_flooded, r.victim_latency_baseline);
}

TEST(Flood, OutOfPolicyFloodAbsorbedByFirewall) {
  const FloodResult r = run_flood_scenario(/*in_policy=*/false, 42);
  EXPECT_TRUE(r.workload_completed);
  // Every burst died in the flooder's own Local Firewall...
  EXPECT_EQ(r.flood_completed, 0u);
  EXPECT_GT(r.flood_blocked, 0u);
  // ... so the shared bus barely noticed (occupancy within noise of the
  // baseline, and strictly below the in-policy flood).
  const FloodResult legal = run_flood_scenario(/*in_policy=*/true, 42);
  EXPECT_LT(r.bus_occupancy_flooded, legal.bus_occupancy_flooded);
}

TEST(Flood, ThrottledFloodIsSuppressedAtItsFirewall) {
  // DoS throttle: even in-policy dummy traffic is capped per window, so
  // most of the flood dies at the flooder's own LF.
  const FloodResult r = run_throttled_flood_scenario(1000, 2, 42);
  EXPECT_TRUE(r.workload_completed);
  EXPECT_GT(r.flood_blocked, r.flood_completed);
  // The victim barely notices compared with the unthrottled legal flood.
  const FloodResult open = run_flood_scenario(/*in_policy=*/true, 42);
  EXPECT_LE(r.victim_latency_flooded, open.victim_latency_flooded);
}

TEST(Flood, RoundRobinBoundsTheDamage) {
  // Even the legal flood cannot starve the victim: round-robin guarantees
  // the victim completes its workload.
  const FloodResult r = run_flood_scenario(/*in_policy=*/true, 7);
  EXPECT_TRUE(r.workload_completed);
}

TEST(FloodMaster, StopsAtConfiguredTotal) {
  FloodMaster flood("f", 1, FloodMaster::Config{0x0, 4096, 4, 10});
  EXPECT_FALSE(flood.done());
  bus::MasterEndpoint ep;
  flood.connect(ep);
  // Tick it manually: one issue per response round-trip.
  for (sim::Cycle c = 0; c < 100 && !flood.done(); ++c) {
    flood.tick(c);
    // Fake an immediate OK response.
    if (!ep.request.empty()) {
      auto t = *ep.request.pop();
      t.status = bus::TransStatus::kOk;
      ep.response.push(std::move(t));
    }
  }
  EXPECT_TRUE(flood.done());
  EXPECT_EQ(flood.completed(), 10u);
}

TEST(FloodMaster, CountsRejections) {
  FloodMaster flood("f", 1, FloodMaster::Config{0x0, 4096, 4, 5});
  bus::MasterEndpoint ep;
  flood.connect(ep);
  for (sim::Cycle c = 0; c < 100 && !flood.done(); ++c) {
    flood.tick(c);
    if (!ep.request.empty()) {
      auto t = *ep.request.pop();
      t.status = bus::TransStatus::kSecurityViolation;
      ep.response.push(std::move(t));
    }
  }
  EXPECT_TRUE(flood.done());
  EXPECT_EQ(flood.completed(), 0u);
  EXPECT_EQ(flood.rejected(), 5u);
}

}  // namespace
}  // namespace secbus::attack
