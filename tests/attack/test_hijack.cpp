// Hijacked-IP scenarios: a compromised internal master must be stopped in
// its own Local Firewall, never reaching the bus (Section III.C containment).
#include <gtest/gtest.h>

#include "attack/campaign.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"

namespace secbus::attack {
namespace {

class HijackSweep : public ::testing::TestWithParam<HijackAttackKind> {};

TEST_P(HijackSweep, DetectedAndContained) {
  const auto result = run_hijack_scenario(GetParam(), 42);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected) << result.scenario;
  EXPECT_TRUE(result.contained) << "attack traffic reached the bus";
  EXPECT_GE(result.total_alerts, 3u);  // three attempts, three alerts
  EXPECT_TRUE(result.workload_completed) << "benign workload must survive";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HijackSweep,
                         ::testing::Values(HijackAttackKind::kForbiddenWrite,
                                           HijackAttackKind::kOutOfSegmentRead,
                                           HijackAttackKind::kBadFormat),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(Hijack, ContainmentMeansZeroBusGrants) {
  // Stronger form of the sweep's assertion, checked directly on the SoC.
  soc::SocConfig cfg = soc::tiny_test_config();
  soc::Soc soc(cfg);
  auto& mal = soc.add_scripted_master("hijacked", soc.cpu_policy(0));
  const auto& plan = soc.plan();
  for (int i = 0; i < 5; ++i) {
    mal.enqueue_write(10, plan.bram_boot.base, {1, 2, 3, 4});
  }
  (void)soc.run(1'000'000);

  for (const auto& ms : soc.bus().master_stats()) {
    if (ms.name == "hijacked") {
      EXPECT_EQ(ms.grants, 0u);
    }
  }
  EXPECT_EQ(mal.stats().violations, 5u);
  EXPECT_EQ(soc.log().count_for(
                static_cast<core::FirewallId>(soc::kMasterScriptedBase)),
            5u);
}

TEST(Hijack, LegalTrafficFromSameMasterStillFlows) {
  // The firewall discards only violating transactions; the same master's
  // in-policy accesses keep working (no blanket kill without reconfig).
  soc::SocConfig cfg = soc::tiny_test_config();
  soc::Soc soc(cfg);
  auto& mal = soc.add_scripted_master("mixed", soc.cpu_policy(0));
  const auto& plan = soc.plan();
  mal.enqueue_write(0, plan.bram_scratch.base, {1, 2, 3, 4});   // legal
  mal.enqueue_write(5, plan.bram_boot.base, {9, 9, 9, 9});      // violation
  mal.enqueue_read(5, plan.bram_scratch.base);                  // legal
  (void)soc.run(1'000'000);
  EXPECT_EQ(mal.stats().ok, 2u);
  EXPECT_EQ(mal.stats().violations, 1u);
  EXPECT_EQ(mal.stats().responses.back().data,
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Hijack, ReconfigLockdownIsolatesRepeatOffender) {
  // With the alert-driven responder enabled, a hijacked IP hammering its
  // firewall gets its policy swapped for lockdown; even previously legal
  // accesses are then discarded (the paper's reconfiguration perspective).
  soc::SocConfig cfg = soc::tiny_test_config();
  cfg.enable_reconfig = true;
  soc::Soc soc(cfg);
  auto& mal = soc.add_scripted_master("offender", soc.cpu_policy(0));
  const auto& plan = soc.plan();
  for (int i = 0; i < 4; ++i) {
    mal.enqueue_write(5, plan.bram_boot.base, {1, 2, 3, 4});  // violations
  }
  mal.enqueue_write(5, plan.bram_scratch.base, {5, 6, 7, 8});  // was legal
  (void)soc.run(1'000'000);

  ASSERT_NE(soc.reconfigurator(), nullptr);
  const auto fw_id = static_cast<core::FirewallId>(soc::kMasterScriptedBase);
  EXPECT_TRUE(soc.reconfigurator()->is_locked_down(fw_id));
  ASSERT_FALSE(soc.reconfigurator()->lockdowns().empty());
  // The final (legal-looking) write was discarded under lockdown.
  EXPECT_EQ(mal.stats().ok, 0u);
  EXPECT_EQ(mal.stats().violations, 5u);
  EXPECT_GT(soc.log().count_of(core::Violation::kPolicyLockdown), 0u);
}

TEST(Hijack, BenignProcessorsUnaffectedByLockdown) {
  soc::SocConfig cfg = soc::tiny_test_config();
  cfg.enable_reconfig = true;
  soc::Soc soc(cfg);
  auto& mal = soc.add_scripted_master("offender", soc.cpu_policy(0));
  for (int i = 0; i < 6; ++i) {
    mal.enqueue_read(5, 0xD000'0000ULL + 0x100ULL * static_cast<sim::Addr>(i));
  }
  const auto r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  // CPU0 finished its whole workload without a single failure.
  EXPECT_EQ(soc.processors().front()->stats().failed, 0u);
  EXPECT_EQ(soc.processors().front()->stats().completed,
            cfg.transactions_per_cpu);
}

}  // namespace
}  // namespace secbus::attack
