#include "baseline/centralized.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::baseline {
namespace {

using core::ConfigurationMemory;
using core::PolicyBuilder;
using core::RwAccess;

ConfigurationMemory make_config() {
  ConfigurationMemory mem;
  for (core::FirewallId id : {1u, 2u, 3u}) {
    mem.install(id, PolicyBuilder(id)
                        .allow(0x0000, 0x800, RwAccess::kReadWrite)
                        .allow(0x0800, 0x800, RwAccess::kReadOnly)
                        .build());
  }
  return mem;
}

TEST(CentralizedManager, UncontendedLatency) {
  ConfigurationMemory mem = make_config();
  CentralizedManager mgr(mem, {12, 2});
  const auto outcome =
      mgr.check(1, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 100);
  EXPECT_TRUE(outcome.decision.allowed);
  // wire(2) + check(12) + wire(2).
  EXPECT_EQ(outcome.latency, 16u);
  EXPECT_EQ(outcome.queue_wait, 0u);
}

TEST(CentralizedManager, DecisionsMatchPolicies) {
  ConfigurationMemory mem = make_config();
  CentralizedManager mgr(mem);
  const auto denied =
      mgr.check(1, bus::BusOp::kWrite, 0x900, 4, bus::DataFormat::kWord, 0);
  EXPECT_FALSE(denied.decision.allowed);
  EXPECT_EQ(denied.decision.violation, core::Violation::kRwViolation);
}

TEST(CentralizedManager, ConcurrentChecksQueue) {
  ConfigurationMemory mem = make_config();
  CentralizedManager mgr(mem, {12, 2});
  // Three interfaces submit in the same cycle: the manager serializes.
  const auto o1 =
      mgr.check(1, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 0);
  const auto o2 =
      mgr.check(2, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 0);
  const auto o3 =
      mgr.check(3, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 0);
  EXPECT_EQ(o1.latency, 16u);
  EXPECT_EQ(o2.queue_wait, 12u);
  EXPECT_EQ(o2.latency, 28u);
  EXPECT_EQ(o3.queue_wait, 24u);
  EXPECT_EQ(o3.latency, 40u);
  EXPECT_EQ(mgr.checks_served(), 3u);
  EXPECT_GT(mgr.queue_wait().mean(), 0.0);
}

TEST(CentralizedManager, EngineFreesUpOverTime) {
  ConfigurationMemory mem = make_config();
  CentralizedManager mgr(mem, {12, 2});
  (void)mgr.check(1, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 0);
  // Next arrival after the engine drained: no queueing.
  const auto later =
      mgr.check(2, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 50);
  EXPECT_EQ(later.queue_wait, 0u);
  EXPECT_EQ(later.latency, 16u);
}

TEST(CentralizedManager, ResetClearsState) {
  ConfigurationMemory mem = make_config();
  CentralizedManager mgr(mem);
  (void)mgr.check(1, bus::BusOp::kRead, 0x10, 4, bus::DataFormat::kWord, 0);
  mgr.reset();
  EXPECT_EQ(mgr.checks_served(), 0u);
  EXPECT_EQ(mgr.busy_until(), 0u);
}

struct GateFixture : public ::testing::Test {
  void SetUp() override {
    config_mem = make_config();
    manager = std::make_unique<CentralizedManager>(
        config_mem, CentralizedManager::Config{12, 2});
    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x1000, sid, "bram");
    gate = std::make_unique<CentralizedMasterGate>("gate_m0", 1, *manager, log);
    gate->connect_bus(bus_obj->attach_master(0, "m0"));
    kernel.add(*gate);
    kernel.add(*bus_obj);
  }

  sim::SimKernel kernel;
  ConfigurationMemory config_mem;
  core::SecurityEventLog log;
  std::unique_ptr<CentralizedManager> manager;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
  std::unique_ptr<CentralizedMasterGate> gate;
};

TEST_F(GateFixture, AllowedTransactionFlowsThrough) {
  bus::BusTransaction t = bus::make_write(0, 0x100, {1, 2, 3, 4});
  t.issued_at = 0;
  gate->ip_side().request.push(std::move(t));
  kernel.run_until([this] { return !gate->ip_side().response.empty(); }, 200);
  ASSERT_FALSE(gate->ip_side().response.empty());
  EXPECT_EQ(gate->ip_side().response.pop()->status, bus::TransStatus::kOk);
  EXPECT_EQ(gate->stats().passed, 1u);
  EXPECT_EQ(bram.writes(), 1u);
}

TEST_F(GateFixture, DeniedTransactionBlockedWithAlert) {
  bus::BusTransaction t = bus::make_write(0, 0x900, {1, 2, 3, 4});
  gate->ip_side().request.push(std::move(t));
  kernel.run_until([this] { return !gate->ip_side().response.empty(); }, 200);
  ASSERT_FALSE(gate->ip_side().response.empty());
  EXPECT_EQ(gate->ip_side().response.pop()->status,
            bus::TransStatus::kSecurityViolation);
  EXPECT_EQ(log.count(), 1u);
  EXPECT_EQ(bus_obj->stats().transactions, 0u);  // contained as well
}

TEST_F(GateFixture, CentralCheckSlowerThanLocal) {
  // Local SB: 12 cycles. Central: 12 + 2*2 wire, plus queueing under load.
  bus::BusTransaction t = bus::make_read(0, 0x100);
  t.issued_at = 0;
  gate->ip_side().request.push(std::move(t));
  kernel.run_until([this] { return !gate->ip_side().response.empty(); }, 200);
  const auto resp = *gate->ip_side().response.pop();
  EXPECT_GE(resp.completed_at - resp.issued_at, 16u);
  EXPECT_EQ(gate->stats().check_cycles, 16u);
}

TEST(CentralizedSlaveGate, DecoratesDeviceWithCentralCheck) {
  ConfigurationMemory mem = make_config();
  core::SecurityEventLog log;
  CentralizedManager mgr(mem, {12, 2});
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  CentralizedSlaveGate gate("gate_bram", 2, mgr, log, bram);

  auto ok = bus::make_write(0, 0x100, {1, 2, 3, 4});
  const auto ok_result = gate.access(ok, 0);
  EXPECT_EQ(ok_result.status, bus::TransStatus::kOk);
  EXPECT_EQ(ok_result.latency, 16u + 1u);

  auto bad = bus::make_write(0, 0x900, {1, 2, 3, 4});
  const auto bad_result = gate.access(bad, 50);
  EXPECT_EQ(bad_result.status, bus::TransStatus::kSecurityViolation);
  EXPECT_EQ(bram.writes(), 1u);
  EXPECT_EQ(log.count(), 1u);
}

}  // namespace
}  // namespace secbus::baseline
