#include "bus/address_map.hpp"

#include <gtest/gtest.h>

namespace secbus::bus {
namespace {

AddressMap make_map() {
  AddressMap map;
  map.add(Region{0x0000, 0x1000, 0, "bram"});
  map.add(Region{0x8000, 0x4000, 1, "ddr"});
  return map;
}

TEST(Region, ContainsAndOverlap) {
  const Region r{0x100, 0x100, 0, "r"};
  EXPECT_TRUE(r.contains(0x100));
  EXPECT_TRUE(r.contains(0x1FF));
  EXPECT_FALSE(r.contains(0x200));
  EXPECT_FALSE(r.contains(0xFF));
  EXPECT_TRUE(r.contains_range(0x180, 0x80));
  EXPECT_FALSE(r.contains_range(0x180, 0x81));
  EXPECT_TRUE(r.overlaps(Region{0x1FF, 0x10, 0, ""}));
  EXPECT_FALSE(r.overlaps(Region{0x200, 0x10, 0, ""}));
}

TEST(Region, ContainsRangeNoOverflow) {
  const Region r{0xFFFFFFFFFFFFFF00ULL, 0x100, 0, "top"};
  EXPECT_TRUE(r.contains_range(0xFFFFFFFFFFFFFF00ULL, 0x100));
  EXPECT_FALSE(r.contains_range(0xFFFFFFFFFFFFFF80ULL, 0x100));
}

TEST(AddressMap, DecodeHitsAndMisses) {
  const AddressMap map = make_map();
  EXPECT_EQ(map.decode(0x0000), std::optional<sim::SlaveId>(0));
  EXPECT_EQ(map.decode(0x0FFF), std::optional<sim::SlaveId>(0));
  EXPECT_EQ(map.decode(0x8000), std::optional<sim::SlaveId>(1));
  EXPECT_EQ(map.decode(0xBFFF), std::optional<sim::SlaveId>(1));
  EXPECT_EQ(map.decode(0x1000), std::nullopt);  // gap
  EXPECT_EQ(map.decode(0xC000), std::nullopt);  // past the end
}

TEST(AddressMap, RegionAtReturnsMetadata) {
  const AddressMap map = make_map();
  const Region* r = map.region_at(0x8123);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->name, "ddr");
  EXPECT_EQ(map.region_at(0x7000), nullptr);
}

TEST(AddressMap, RangeDecodeRejectsStraddle) {
  const AddressMap map = make_map();
  EXPECT_NE(map.region_for_range(0x8000, 0x4000), nullptr);
  EXPECT_EQ(map.region_for_range(0x0FF0, 0x20), nullptr);   // runs off bram
  EXPECT_EQ(map.region_for_range(0x7FF0, 0x20), nullptr);   // starts in a gap
  EXPECT_NE(map.region_for_range(0x0FF0, 0x10), nullptr);   // exactly fits
}

TEST(AddressMap, FindByName) {
  const AddressMap map = make_map();
  ASSERT_NE(map.find("bram"), nullptr);
  EXPECT_EQ(map.find("bram")->base, 0x0000u);
  EXPECT_EQ(map.find("nope"), nullptr);
}

TEST(AddressMap, RegionsAccessor) {
  const AddressMap map = make_map();
  EXPECT_EQ(map.regions().size(), 2u);
}

using AddressMapDeath = AddressMap;

TEST(AddressMapDeathTest, OverlapAborts) {
  AddressMap map = make_map();
  EXPECT_DEATH(map.add(Region{0x0800, 0x1000, 2, "overlapping"}), "overlap");
}

TEST(AddressMapDeathTest, EmptyRegionAborts) {
  AddressMap map;
  EXPECT_DEATH(map.add(Region{0x0, 0x0, 0, "empty"}), "non-empty");
}

}  // namespace
}  // namespace secbus::bus
