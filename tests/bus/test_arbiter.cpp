#include "bus/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

namespace secbus::bus {
namespace {

TEST(RoundRobin, NoRequestsNoGrant) {
  RoundRobinArbiter arb;
  EXPECT_EQ(arb.pick({false, false, false}), -1);
  EXPECT_EQ(arb.pick({}), -1);
}

TEST(RoundRobin, SingleRequesterAlwaysWins) {
  RoundRobinArbiter arb;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(arb.pick({false, true, false}), 1);
  }
}

TEST(RoundRobin, RotatesAmongAllRequesters) {
  RoundRobinArbiter arb;
  const std::vector<bool> all{true, true, true};
  EXPECT_EQ(arb.pick(all), 0);
  EXPECT_EQ(arb.pick(all), 1);
  EXPECT_EQ(arb.pick(all), 2);
  EXPECT_EQ(arb.pick(all), 0);
}

TEST(RoundRobin, SkipsIdleMasters) {
  RoundRobinArbiter arb;
  EXPECT_EQ(arb.pick({true, false, true}), 0);
  EXPECT_EQ(arb.pick({true, false, true}), 2);
  EXPECT_EQ(arb.pick({true, false, true}), 0);
}

TEST(RoundRobin, StarvationFreedomUnderFullLoad) {
  RoundRobinArbiter arb;
  const std::vector<bool> all(4, true);
  std::map<int, int> grants;
  for (int i = 0; i < 400; ++i) ++grants[arb.pick(all)];
  for (int m = 0; m < 4; ++m) EXPECT_EQ(grants[m], 100) << "master " << m;
}

TEST(RoundRobin, ResetRestartsRotation) {
  RoundRobinArbiter arb;
  const std::vector<bool> all{true, true};
  EXPECT_EQ(arb.pick(all), 0);
  arb.reset();
  EXPECT_EQ(arb.pick(all), 0);
}

TEST(FixedPriority, LowestIndexWins) {
  FixedPriorityArbiter arb;
  EXPECT_EQ(arb.pick({false, true, true}), 1);
  EXPECT_EQ(arb.pick({true, true, true}), 0);
  EXPECT_EQ(arb.pick({false, false, true}), 2);
  EXPECT_EQ(arb.pick({false, false, false}), -1);
}

TEST(FixedPriority, StarvesHighIndexUnderLoad) {
  FixedPriorityArbiter arb;
  const std::vector<bool> all{true, true};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(arb.pick(all), 0);
}

}  // namespace
}  // namespace secbus::bus
