#include "bus/bridge.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "sim/kernel.hpp"

namespace secbus::bus {
namespace {

// Byte-array slave with fixed latency (same shape as the system-bus tests).
class FakeSlave final : public SlaveDevice {
 public:
  explicit FakeSlave(sim::Cycle latency = 1) : latency_(latency) {
    memory_.resize(0x1000, 0);
  }

  AccessResult access(BusTransaction& t, sim::Cycle now) override {
    last_access_cycle = now;
    ++accesses;
    const sim::Addr off = t.addr - base_;
    if (off + t.payload_bytes() > memory_.size()) {
      return {1, TransStatus::kSlaveError};
    }
    if (t.is_write()) {
      std::copy(t.data.begin(), t.data.end(),
                memory_.begin() + static_cast<long>(off));
    } else {
      t.data.assign(memory_.begin() + static_cast<long>(off),
                    memory_.begin() + static_cast<long>(off + t.payload_bytes()));
    }
    return {latency_, TransStatus::kOk};
  }
  [[nodiscard]] std::string_view slave_name() const override { return "fake"; }

  std::vector<std::uint8_t> memory_;
  sim::Addr base_ = 0;
  sim::Cycle latency_;
  sim::Cycle last_access_cycle = 0;
  int accesses = 0;
};

// Two segments joined by one near->far bridge. The near side maps a COARSE
// 0x2000-wide window onto the bridge while the far side only maps the first
// 0x1000 to a real slave — which is exactly the nested-window situation a
// routed fabric produces.
struct BridgeFixture : public ::testing::Test {
  void SetUp() override {
    near = std::make_unique<SystemBus>("near");
    far = std::make_unique<SystemBus>("far");
    bridge = std::make_unique<Bridge>("bridge_n2f", *far, Bridge::Config{2});

    far_slave_id = far->add_slave(slave);
    far->map_region(0x0000, 0x1000, far_slave_id, "mem");

    bridge_id = near->add_slave(*bridge);
    near->map_region(0x0000, 0x2000, bridge_id, "route-to-far");

    ep = &near->attach_master(0, "m0");
    far_ep = &far->attach_master(1, "far_local");
    kernel.add(*near);
    kernel.add(*far);
  }

  sim::SimKernel kernel;
  std::unique_ptr<SystemBus> near;
  std::unique_ptr<SystemBus> far;
  std::unique_ptr<Bridge> bridge;
  FakeSlave slave;
  sim::SlaveId far_slave_id = 0;
  sim::SlaveId bridge_id = 0;
  MasterEndpoint* ep = nullptr;
  MasterEndpoint* far_ep = nullptr;
};

TEST_F(BridgeFixture, WindowHitCrossSegmentRoundTrip) {
  BusTransaction w = make_write(0, 0x100, {0xAA, 0xBB, 0xCC, 0xDD});
  ep->request.push(std::move(w));
  kernel.run(20);
  ASSERT_FALSE(ep->response.empty());
  EXPECT_EQ(ep->response.pop()->status, TransStatus::kOk);
  EXPECT_EQ(slave.accesses, 1);
  EXPECT_EQ(slave.memory_[0x100], 0xAA);
  EXPECT_EQ(slave.memory_[0x103], 0xDD);

  BusTransaction r = make_read(0, 0x100, DataFormat::kWord, 1);
  ep->request.push(std::move(r));
  kernel.run(20);
  ASSERT_FALSE(ep->response.empty());
  const BusTransaction resp = *ep->response.pop();
  EXPECT_EQ(resp.status, TransStatus::kOk);
  EXPECT_EQ(resp.data, (std::vector<std::uint8_t>{0xAA, 0xBB, 0xCC, 0xDD}));
  EXPECT_EQ(bridge->stats().forwarded, 2u);
  EXPECT_EQ(bridge->stats().decode_errors, 0u);
}

TEST_F(BridgeFixture, CrossingAddsHopLatency) {
  slave.latency_ = 3;
  BusTransaction r = make_read(0, 0x0, DataFormat::kWord, 2);
  ep->request.push(std::move(r));
  kernel.run(30);
  ASSERT_FALSE(ep->response.empty());
  const BusTransaction resp = *ep->response.pop();
  // Local timing is grant(addr) + latency + beats = completed at 5 (see
  // TransactionTimingMatchesModel); the crossing adds hop_latency = 2.
  EXPECT_EQ(resp.granted_at, 0u);
  EXPECT_EQ(resp.completed_at, 7u);
}

TEST_F(BridgeFixture, NestedWindowMissReturnsDecodeError) {
  // 0x1800 hits the near side's coarse routing window but is a hole in the
  // far segment's map.
  BusTransaction r = make_read(0, 0x1800);
  ep->request.push(std::move(r));
  kernel.run(20);
  ASSERT_FALSE(ep->response.empty());
  EXPECT_EQ(ep->response.pop()->status, TransStatus::kDecodeError);
  EXPECT_EQ(bridge->stats().decode_errors, 1u);
  EXPECT_EQ(bridge->stats().forwarded, 0u);
  EXPECT_EQ(slave.accesses, 0);
}

TEST_F(BridgeFixture, NestedWindowResolvesFinerFarRegions) {
  // A second far-side slave under the same coarse near-side window: the far
  // decode — not the bridge window — picks the device.
  FakeSlave second;
  second.base_ = 0x1000;
  const sim::SlaveId second_id = far->add_slave(second);
  far->map_region(0x1000, 0x800, second_id, "mem-hi");

  ep->request.push(make_write(0, 0x1004, {7, 7, 7, 7}));
  kernel.run(20);
  ASSERT_FALSE(ep->response.empty());
  EXPECT_EQ(ep->response.pop()->status, TransStatus::kOk);
  EXPECT_EQ(slave.accesses, 0);
  EXPECT_EQ(second.accesses, 1);
  EXPECT_EQ(second.memory_[0x4], 7);
}

TEST_F(BridgeFixture, ReservationMakesFarLocalMasterWait) {
  // Far-local master and bridged traffic collide on the far segment: the
  // crossing books its service window on the far bus, so the local
  // master's grant slides past the booked window.
  slave.latency_ = 10;
  ep->request.push(make_read(0, 0x0, DataFormat::kWord, 4));
  kernel.run(1);  // near bus grants, bridge books the crossing on far
  EXPECT_GT(far->booked_until(), kernel.now());

  far_ep->request.push(make_read(1, 0x20));
  kernel.run(40);
  ASSERT_FALSE(far_ep->response.empty());
  const BusTransaction resp = *far_ep->response.pop();
  EXPECT_EQ(resp.status, TransStatus::kOk);
  // Issued at cycle 1 but granted only after the reservation expired
  // (hop 2 + slave 10 + 4 beats => held through cycle 15).
  EXPECT_GE(resp.granted_at, 16u);
  EXPECT_GT(far->master_stats().front().wait_cycles.mean(), 0.0);
}

TEST_F(BridgeFixture, CrossingWaitsForFarLocalTransaction) {
  // Contention in the other direction: the far segment is mid local
  // transaction when the crossing arrives, so the crossing queues behind it
  // (and the wait is charged to the origin's hold).
  slave.latency_ = 10;
  far_ep->request.push(make_read(1, 0x20));
  kernel.run(1);  // far grants its local master

  ep->request.push(make_read(0, 0x0));
  kernel.run(60);
  ASSERT_FALSE(ep->response.empty());
  EXPECT_EQ(ep->response.pop()->status, TransStatus::kOk);
  EXPECT_GT(bridge->stats().far_wait.max(), 0.0);
}

TEST_F(BridgeFixture, TwoHopChainReachesRemoteSlave) {
  // near -> far -> farthest: the far segment's own map routes a window to a
  // second bridge, so the crossing recurses one more hop.
  SystemBus farthest("farthest");
  FakeSlave remote;
  remote.base_ = 0x4000;
  const sim::SlaveId remote_id = farthest.add_slave(remote);
  farthest.map_region(0x4000, 0x1000, remote_id, "remote");

  Bridge hop2("bridge_f2x", farthest, Bridge::Config{2});
  const sim::SlaveId hop2_id = far->add_slave(hop2);
  far->map_region(0x4000, 0x1000, hop2_id, "route-to-farthest");
  near->map_region(0x4000, 0x1000, bridge_id, "route-via-far");

  ep->request.push(make_write(0, 0x4010, {1, 2, 3, 4}));
  kernel.run(30);
  ASSERT_FALSE(ep->response.empty());
  EXPECT_EQ(ep->response.pop()->status, TransStatus::kOk);
  EXPECT_EQ(remote.accesses, 1);
  EXPECT_EQ(remote.memory_[0x10], 1);
  EXPECT_EQ(bridge->stats().forwarded, 1u);
  EXPECT_EQ(hop2.stats().forwarded, 1u);
  // Both crossed segments got circuit-held.
  EXPECT_GT(far->stats().bridged_in, 0u);
  EXPECT_GT(farthest.stats().bridged_in, 0u);
}

}  // namespace
}  // namespace secbus::bus
