// Conservation fuzz: under randomized multi-master traffic, the bus must
// deliver exactly one response per request — nothing lost, duplicated or
// cross-delivered — and firewalled paths must preserve the same invariant
// (passed + blocked == issued). These invariants underpin every overhead
// measurement in the benches.
#include <gtest/gtest.h>

#include <map>

#include "bus/system_bus.hpp"
#include "core/local_firewall.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace secbus::bus {
namespace {

class BusFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusFuzz, EveryRequestGetsExactlyOneResponse) {
  util::Xoshiro256 rng(GetParam());
  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x4000, 1}};
  SystemBus bus("bus");
  const auto sid = bus.add_slave(bram);
  bus.map_region(0x0000, 0x4000, sid, "bram");

  constexpr int kMasters = 4;
  std::vector<MasterEndpoint*> eps;
  for (int m = 0; m < kMasters; ++m) {
    eps.push_back(&bus.attach_master(static_cast<sim::MasterId>(m),
                                     "m" + std::to_string(m)));
  }
  kernel.add(bus);

  // Issue a random number of random transactions per master; some target
  // unmapped space on purpose (decode errors still produce responses).
  std::map<sim::TransactionId, int> outstanding;  // id -> owning master
  std::uint64_t issued = 0;
  for (int m = 0; m < kMasters; ++m) {
    const std::uint64_t count = rng.range(5, 30);
    for (std::uint64_t i = 0; i < count; ++i) {
      const bool unmapped = rng.chance(0.15);
      const DataFormat fmt = rng.chance(0.3) ? DataFormat::kByte
                                             : DataFormat::kWord;
      const auto burst = static_cast<std::uint16_t>(rng.range(1, 6));
      const std::uint64_t bytes = burst * beat_bytes(fmt);
      const sim::Addr addr =
          (unmapped ? 0x8000u : 0u) + rng.below(0x4000 - bytes);
      BusTransaction t = rng.chance(0.5)
                             ? make_read(static_cast<sim::MasterId>(m), addr,
                                         fmt, burst)
                             : make_write(static_cast<sim::MasterId>(m), addr,
                                          std::vector<std::uint8_t>(bytes, 0xA5),
                                          fmt);
      t.id = make_trans_id(static_cast<sim::MasterId>(m), i + 1);
      outstanding[t.id] = m;
      ++issued;
      eps[static_cast<std::size_t>(m)]->request.push(std::move(t));
    }
  }

  kernel.run(20'000);

  std::uint64_t received = 0;
  for (int m = 0; m < kMasters; ++m) {
    while (!eps[static_cast<std::size_t>(m)]->response.empty()) {
      const BusTransaction resp = *eps[static_cast<std::size_t>(m)]->response.pop();
      ++received;
      auto it = outstanding.find(resp.id);
      ASSERT_NE(it, outstanding.end()) << "duplicate or unknown response";
      EXPECT_EQ(it->second, m) << "response delivered to the wrong master";
      EXPECT_NE(resp.status, TransStatus::kPending);
      outstanding.erase(it);
    }
  }
  EXPECT_EQ(received, issued);
  EXPECT_TRUE(outstanding.empty()) << outstanding.size() << " lost responses";
  EXPECT_EQ(bus.stats().transactions, issued);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusFuzz, ::testing::Values(1, 2, 3, 5, 8, 13));

class FirewallFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FirewallFuzz, ConservationThroughTheFirewall) {
  util::Xoshiro256 rng(GetParam() * 977);
  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x4000, 1}};
  SystemBus bus("bus");
  const auto sid = bus.add_slave(bram);
  bus.map_region(0x0000, 0x4000, sid, "bram");

  core::ConfigurationMemory config_mem;
  core::SecurityEventLog log;
  // Half the window writable, a quarter read-only, a quarter unreachable.
  config_mem.install(1, core::PolicyBuilder(1)
                            .allow(0x0000, 0x2000, core::RwAccess::kReadWrite)
                            .allow(0x2000, 0x1000, core::RwAccess::kReadOnly,
                                   core::FormatMask::k32)
                            .build());
  core::LocalFirewall fw("lf_fuzz", 1, config_mem, log);
  fw.connect_bus(bus.attach_master(0, "m0"));
  kernel.add(fw);
  kernel.add(bus);

  const std::uint64_t issued = rng.range(20, 60);
  for (std::uint64_t i = 0; i < issued; ++i) {
    const sim::Addr addr = rng.below(0x4800);  // may exceed policy & map
    BusTransaction t = rng.chance(0.5)
                           ? make_read(0, addr,
                                       rng.chance(0.3) ? DataFormat::kByte
                                                       : DataFormat::kWord)
                           : make_write(0, addr, {1, 2, 3, 4});
    t.id = make_trans_id(0, i + 1);
    fw.ip_side().request.push(std::move(t));
  }

  kernel.run(30'000);

  std::uint64_t received = 0;
  while (!fw.ip_side().response.empty()) {
    (void)fw.ip_side().response.pop();
    ++received;
  }
  EXPECT_EQ(received, issued);
  EXPECT_EQ(fw.stats().passed + fw.stats().blocked, issued);
  EXPECT_EQ(fw.stats().blocked, log.count());
  EXPECT_TRUE(fw.idle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirewallFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace secbus::bus
