#include "bus/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace secbus::bus {
namespace {

class FakeSlave final : public SlaveDevice {
 public:
  AccessResult access(BusTransaction& t, sim::Cycle /*now*/) override {
    ++accesses;
    if (t.is_write()) {
      last_write.assign(t.data.begin(), t.data.end());
    } else {
      t.data.assign(t.payload_bytes(), 0x5A);
    }
    return {1, TransStatus::kOk};
  }
  [[nodiscard]] std::string_view slave_name() const override { return "fake"; }

  int accesses = 0;
  std::vector<std::uint8_t> last_write;
};

TEST(FabricTopology, PresetShapes) {
  EXPECT_EQ(FabricTopology::flat().segments, 1u);
  EXPECT_TRUE(FabricTopology::flat().links.empty());

  const FabricTopology star = FabricTopology::star(4);
  EXPECT_EQ(star.segments, 5u);
  EXPECT_EQ(star.links.size(), 4u);
  EXPECT_TRUE(star.validate());

  const FabricTopology mesh = FabricTopology::mesh(2, 2);
  EXPECT_EQ(mesh.segments, 4u);
  EXPECT_EQ(mesh.links.size(), 4u);  // 2 horizontal + 2 vertical
  EXPECT_TRUE(mesh.validate());

  const FabricTopology mesh43 = FabricTopology::mesh(4, 3);
  EXPECT_EQ(mesh43.segments, 12u);
  // rows*(cols-1) horizontal + (rows-1)*cols vertical.
  EXPECT_EQ(mesh43.links.size(), 4u * 2u + 3u * 3u);
  EXPECT_TRUE(mesh43.validate());
}

TEST(FabricTopology, RejectsMalformedGraphs) {
  std::string error;

  FabricTopology out_of_range;
  out_of_range.segments = 2;
  out_of_range.links.push_back({0, 5, 2});
  EXPECT_FALSE(out_of_range.validate(&error));

  FabricTopology self_link;
  self_link.segments = 2;
  self_link.links.push_back({1, 1, 2});
  EXPECT_FALSE(self_link.validate(&error));

  FabricTopology disconnected;
  disconnected.segments = 3;
  disconnected.links.push_back({0, 1, 2});  // segment 2 unreachable
  EXPECT_FALSE(disconnected.validate(&error));
  EXPECT_EQ(error, "topology is not connected");

  FabricTopology zero_hop;
  zero_hop.segments = 2;
  zero_hop.links.push_back({0, 1, 0});
  EXPECT_FALSE(zero_hop.validate(&error));
}

TEST(Fabric, HopCountsAndRoutesOnMesh2x2) {
  // Segment layout: 0 1
  //                 2 3
  Fabric fabric(FabricTopology::mesh(2, 2));
  EXPECT_EQ(fabric.hop_count(0, 0), 0u);
  EXPECT_EQ(fabric.hop_count(0, 1), 1u);
  EXPECT_EQ(fabric.hop_count(0, 2), 1u);
  EXPECT_EQ(fabric.hop_count(0, 3), 2u);
  EXPECT_EQ(fabric.hop_count(3, 0), 2u);
  // Deterministic tie-break: of 3's neighbors {1, 2}, BFS meets 1 first.
  EXPECT_EQ(fabric.next_hop(3, 0), 1u);
  EXPECT_EQ(fabric.farthest_segment_from(0), 3u);
}

TEST(Fabric, FlatFabricIsTheLegacyBus) {
  Fabric fabric(FabricTopology::flat());
  FakeSlave slave;
  const auto id = fabric.add_slave(slave, 0);
  fabric.map_region(0x0, 0x1000, id, "mem");
  fabric.finalize();
  EXPECT_EQ(fabric.segment_count(), 1u);
  EXPECT_TRUE(fabric.bridges().empty());
  EXPECT_EQ(fabric.segment(0).name(), "system_bus");
  EXPECT_EQ(fabric.farthest_segment_from(0), 0u);
}

TEST(Fabric, StarRoutesLeafTrafficThroughHub) {
  Fabric fabric(FabricTopology::star(2));
  FakeSlave slave;
  const auto id = fabric.add_slave(slave, 0);
  fabric.map_region(0x0, 0x1000, id, "mem");

  MasterEndpoint& leaf1 = fabric.attach_master(1, 0, "leaf1");
  MasterEndpoint& leaf2 = fabric.attach_master(2, 1, "leaf2");
  fabric.finalize();
  // One bridge per leaf toward the hub; nothing routes hub -> leaf because
  // no slave lives on a leaf.
  EXPECT_EQ(fabric.bridges().size(), 2u);

  sim::SimKernel kernel;
  fabric.register_components(kernel);
  leaf1.request.push(make_write(0, 0x10, {1, 2, 3, 4}));
  leaf2.request.push(make_read(1, 0x20));
  kernel.run(40);

  ASSERT_FALSE(leaf1.response.empty());
  ASSERT_FALSE(leaf2.response.empty());
  EXPECT_EQ(leaf1.response.pop()->status, TransStatus::kOk);
  EXPECT_EQ(leaf2.response.pop()->status, TransStatus::kOk);
  EXPECT_EQ(slave.accesses, 2);
  EXPECT_EQ(fabric.find_master("leaf1")->grants, 1u);
  EXPECT_EQ(fabric.find_master("leaf2")->grants, 1u);
  EXPECT_EQ(fabric.find_master("nobody"), nullptr);
  // Aggregate stats fold both leaf segments.
  EXPECT_EQ(fabric.transactions(), 2u);
  EXPECT_TRUE(fabric.idle());
}

TEST(Fabric, RemoteWindowsMaterializeOnEverySegment) {
  Fabric fabric(FabricTopology::mesh(2, 2));
  FakeSlave slave;
  const auto id = fabric.add_slave(slave, 0);
  fabric.map_region(0x8000, 0x1000, id, "mem");
  fabric.finalize();
  EXPECT_EQ(fabric.home_segment(id), 0u);
  for (std::size_t seg = 0; seg < 4; ++seg) {
    const Region* region = fabric.segment(seg).address_map().region_at(0x8800);
    ASSERT_NE(region, nullptr) << "segment " << seg;
    EXPECT_EQ(region->name, "mem");
  }
  // Segment 3 is two hops out: its window must point at a bridge, and the
  // chain 3 -> 1 -> 0 exists.
  EXPECT_EQ(fabric.hop_count(3, 0), 2u);
  EXPECT_GE(fabric.bridges().size(), 3u);  // 1->0, 2->0, 3->1
}

TEST(Fabric, CrossSegmentLatencyGrowsWithHopCount) {
  // Identical single-master traffic from segments at hop distance 0, 1 and
  // 2 of a 2x2 mesh: completion time must be strictly ordered by hops.
  sim::Cycle completed[3] = {0, 0, 0};
  const std::size_t sources[3] = {0, 1, 3};
  for (int i = 0; i < 3; ++i) {
    Fabric fabric(FabricTopology::mesh(2, 2));
    FakeSlave slave;
    const auto id = fabric.add_slave(slave, 0);
    fabric.map_region(0x0, 0x1000, id, "mem");
    MasterEndpoint& ep = fabric.attach_master(sources[i], 0, "m");
    fabric.finalize();
    sim::SimKernel kernel;
    fabric.register_components(kernel);
    ep.request.push(make_read(0, 0x40));
    kernel.run(30);
    ASSERT_FALSE(ep.response.empty());
    completed[i] = ep.response.pop()->completed_at;
  }
  EXPECT_LT(completed[0], completed[1]);
  EXPECT_LT(completed[1], completed[2]);
}

}  // namespace
}  // namespace secbus::bus
