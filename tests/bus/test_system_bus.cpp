#include "bus/system_bus.hpp"

#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace secbus::bus {
namespace {

// Configurable fake slave: byte-addressed array, fixed latency.
class FakeSlave final : public SlaveDevice {
 public:
  explicit FakeSlave(sim::Cycle latency = 1) : latency_(latency) {
    memory_.resize(0x1000, 0);
  }

  AccessResult access(BusTransaction& t, sim::Cycle now) override {
    last_access_cycle = now;
    ++accesses;
    if (t.end_addr() > memory_.size()) return {1, TransStatus::kSlaveError};
    if (t.is_write()) {
      std::copy(t.data.begin(), t.data.end(), memory_.begin() + static_cast<long>(t.addr));
    } else {
      t.data.assign(memory_.begin() + static_cast<long>(t.addr),
                    memory_.begin() + static_cast<long>(t.end_addr()));
    }
    return {latency_, TransStatus::kOk};
  }
  [[nodiscard]] std::string_view slave_name() const override { return "fake"; }

  std::vector<std::uint8_t> memory_;
  sim::Cycle latency_;
  sim::Cycle last_access_cycle = 0;
  int accesses = 0;
};

struct BusFixture : public ::testing::Test {
  void SetUp() override {
    bus = std::make_unique<SystemBus>("bus");
    slave_id = bus->add_slave(slave);
    bus->map_region(0x0000, 0x1000, slave_id, "mem");
    ep0 = &bus->attach_master(0, "m0");
    ep1 = &bus->attach_master(1, "m1");
    kernel.add(*bus);
  }

  sim::SimKernel kernel;
  std::unique_ptr<SystemBus> bus;
  FakeSlave slave;
  sim::SlaveId slave_id = 0;
  MasterEndpoint* ep0 = nullptr;
  MasterEndpoint* ep1 = nullptr;
};

TEST_F(BusFixture, WriteThenReadRoundTrip) {
  BusTransaction w = make_write(0, 0x100, {1, 2, 3, 4});
  w.issued_at = 0;
  ep0->request.push(std::move(w));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  EXPECT_EQ(ep0->response.pop()->status, TransStatus::kOk);

  BusTransaction r = make_read(0, 0x100, DataFormat::kWord, 1);
  r.issued_at = kernel.now();
  ep0->request.push(std::move(r));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  const BusTransaction resp = *ep0->response.pop();
  EXPECT_EQ(resp.status, TransStatus::kOk);
  EXPECT_EQ(resp.data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST_F(BusFixture, TransactionTimingMatchesModel) {
  // grant cycle (addr) + slave latency + burst beats.
  slave.latency_ = 3;
  BusTransaction r = make_read(0, 0x0, DataFormat::kWord, 2);
  r.issued_at = 0;
  ep0->request.push(std::move(r));
  kernel.run(20);
  ASSERT_FALSE(ep0->response.empty());
  const BusTransaction resp = *ep0->response.pop();
  EXPECT_EQ(resp.granted_at, 0u);
  // Address cycle at c0, then latency(3) + beats(2) cycles -> done at c5.
  EXPECT_EQ(resp.completed_at, 5u);
}

TEST_F(BusFixture, DecodeErrorForUnmappedAddress) {
  BusTransaction r = make_read(0, 0x8000);
  ep0->request.push(std::move(r));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  EXPECT_EQ(ep0->response.pop()->status, TransStatus::kDecodeError);
  EXPECT_EQ(bus->stats().decode_errors, 1u);
  EXPECT_EQ(slave.accesses, 0);
}

TEST_F(BusFixture, BurstMayNotStraddleRegionEnd) {
  BusTransaction r = make_read(0, 0x0FFC, DataFormat::kWord, 2);  // 8 bytes
  ep0->request.push(std::move(r));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  EXPECT_EQ(ep0->response.pop()->status, TransStatus::kDecodeError);
}

TEST_F(BusFixture, RoundRobinAlternatesBetweenMasters) {
  for (int i = 0; i < 3; ++i) {
    ep0->request.push(make_read(0, 0x0));
    ep1->request.push(make_read(1, 0x4));
  }
  kernel.run(60);
  EXPECT_EQ(bus->master_stats()[0].grants, 3u);
  EXPECT_EQ(bus->master_stats()[1].grants, 3u);
  EXPECT_EQ(bus->stats().transactions, 6u);
}

TEST_F(BusFixture, OneTransactionAtATime) {
  ep0->request.push(make_read(0, 0x0, DataFormat::kWord, 4));
  ep1->request.push(make_read(1, 0x4, DataFormat::kWord, 4));
  kernel.run(3);
  // Second master still waiting while first transfer occupies the bus.
  EXPECT_TRUE(ep1->response.empty());
  kernel.run(30);
  EXPECT_FALSE(ep1->response.empty());
}

TEST_F(BusFixture, StatsTrackOccupancyAndBytes) {
  ep0->request.push(make_write(0, 0x0, std::vector<std::uint8_t>(16, 9)));
  kernel.run(30);
  const auto& stats = bus->stats();
  EXPECT_EQ(stats.transactions, 1u);
  EXPECT_EQ(stats.bytes_transferred, 16u);
  EXPECT_GT(stats.busy_cycles, 0u);
  EXPECT_GT(stats.idle_cycles, 0u);
  EXPECT_GT(stats.occupancy(), 0.0);
  EXPECT_LT(stats.occupancy(), 1.0);
}

TEST_F(BusFixture, WaitCyclesMeasuredFromIssue) {
  BusTransaction r1 = make_read(0, 0x0, DataFormat::kWord, 4);
  r1.issued_at = 0;
  BusTransaction r2 = make_read(1, 0x4);
  r2.issued_at = 0;
  ep0->request.push(std::move(r1));
  ep1->request.push(std::move(r2));
  kernel.run(30);
  // m1 waited for m0's transfer to finish.
  EXPECT_GT(bus->master_stats()[1].wait_cycles.mean(), 0.0);
}

TEST_F(BusFixture, SlaveErrorPropagates) {
  ep0->request.push(make_read(0, 0x0FF8, DataFormat::kWord, 2));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  // In range for the region (0x0FF8+8 = 0x1000) but FakeSlave's memory is
  // exactly 0x1000 bytes, so this succeeds; use a smaller slave to check.
  // Instead: unmap nothing—this transaction is fine. Shrink memory:
  EXPECT_EQ(ep0->response.pop()->status, TransStatus::kOk);

  slave.memory_.resize(0x800);
  ep0->request.push(make_read(0, 0x0900));
  kernel.run(10);
  ASSERT_FALSE(ep0->response.empty());
  EXPECT_EQ(ep0->response.pop()->status, TransStatus::kSlaveError);
  EXPECT_EQ(bus->master_stats()[0].errors, 1u);
}

TEST_F(BusFixture, IdleReflectsQueuesAndState) {
  EXPECT_TRUE(bus->idle());
  ep0->request.push(make_read(0, 0x0));
  EXPECT_FALSE(bus->idle());
  kernel.run(10);
  EXPECT_TRUE(bus->idle());
}

TEST_F(BusFixture, ResetClearsState) {
  ep0->request.push(make_read(0, 0x0));
  kernel.run(2);
  bus->reset();
  EXPECT_TRUE(bus->idle());
  EXPECT_EQ(bus->stats().transactions, 0u);
  EXPECT_EQ(bus->master_stats()[0].grants, 0u);
}

TEST(SystemBusPriority, FixedPriorityStarvesUnderLoad) {
  sim::SimKernel kernel;
  SystemBus bus("bus", std::make_unique<FixedPriorityArbiter>());
  FakeSlave slave;
  const auto sid = bus.add_slave(slave);
  bus.map_region(0x0, 0x1000, sid, "mem");
  auto& ep0 = bus.attach_master(0, "hog");
  auto& ep1 = bus.attach_master(1, "victim");
  kernel.add(bus);

  // Keep master 0 saturated; master 1 has one pending request.
  ep1.request.push(make_read(1, 0x4));
  for (int i = 0; i < 10; ++i) ep0.request.push(make_read(0, 0x0));
  kernel.run(25);
  // Master 1 still starved while master 0 has work.
  EXPECT_EQ(bus.master_stats()[1].grants, 0u);
  kernel.run(200);
  EXPECT_EQ(bus.master_stats()[1].grants, 1u);
}

}  // namespace
}  // namespace secbus::bus
