#include "bus/transaction.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"

namespace secbus::bus {
namespace {

TEST(Transaction, MakeReadShape) {
  const BusTransaction t = make_read(2, 0x1000, DataFormat::kWord, 4);
  EXPECT_EQ(t.master, 2);
  EXPECT_EQ(t.op, BusOp::kRead);
  EXPECT_EQ(t.addr, 0x1000u);
  EXPECT_EQ(t.burst_len, 4);
  EXPECT_EQ(t.payload_bytes(), 16u);
  EXPECT_EQ(t.payload_bits(), 128u);
  EXPECT_EQ(t.end_addr(), 0x1010u);
  EXPECT_EQ(t.data.size(), 16u);
  EXPECT_FALSE(t.is_write());
  EXPECT_EQ(t.status, TransStatus::kPending);
  EXPECT_FALSE(t.failed());
}

TEST(Transaction, MakeWriteDerivesBurstFromPayload) {
  const BusTransaction t =
      make_write(1, 0x2000, std::vector<std::uint8_t>(24, 0xAB),
                 DataFormat::kWord);
  EXPECT_TRUE(t.is_write());
  EXPECT_EQ(t.burst_len, 6);  // 24 bytes / 4-byte beats
  EXPECT_EQ(t.payload_bytes(), 24u);
}

TEST(Transaction, ByteAndHalfWordFormats) {
  const BusTransaction b =
      make_write(0, 0x10, std::vector<std::uint8_t>(3, 1), DataFormat::kByte);
  EXPECT_EQ(b.burst_len, 3);
  const BusTransaction h =
      make_write(0, 0x10, std::vector<std::uint8_t>(6, 1), DataFormat::kHalfWord);
  EXPECT_EQ(h.burst_len, 3);
  EXPECT_EQ(beat_bytes(DataFormat::kByte), 1u);
  EXPECT_EQ(beat_bytes(DataFormat::kHalfWord), 2u);
  EXPECT_EQ(beat_bytes(DataFormat::kWord), 4u);
}

TEST(Transaction, FailedStatuses) {
  BusTransaction t = make_read(0, 0);
  for (TransStatus s : {TransStatus::kDecodeError, TransStatus::kSlaveError,
                        TransStatus::kSecurityViolation,
                        TransStatus::kIntegrityError}) {
    t.status = s;
    EXPECT_TRUE(t.failed());
  }
  t.status = TransStatus::kOk;
  EXPECT_FALSE(t.failed());
}

TEST(Transaction, DescribeMentionsKeyFields) {
  BusTransaction t = make_read(3, 0xDEAD0000, DataFormat::kHalfWord, 2);
  t.id = 99;
  const std::string text = t.describe();
  EXPECT_NE(text.find("m3"), std::string::npos);
  EXPECT_NE(text.find("read"), std::string::npos);
  EXPECT_NE(text.find("dead0000"), std::string::npos);
  EXPECT_NE(text.find("16-bit"), std::string::npos);
}

TEST(Transaction, TransIdEncodesMasterAndSequence) {
  const auto id = make_trans_id(7, 123);
  EXPECT_EQ(id >> 48, 7u);
  EXPECT_EQ(id & 0xFFFFFFFFFFFFULL, 123u);
  EXPECT_NE(make_trans_id(1, 5), make_trans_id(2, 5));
  EXPECT_NE(make_trans_id(1, 5), make_trans_id(1, 6));
}

TEST(Transaction, StatusNames) {
  EXPECT_STREQ(to_string(TransStatus::kOk), "ok");
  EXPECT_STREQ(to_string(TransStatus::kSecurityViolation),
               "security_violation");
  EXPECT_STREQ(to_string(TransStatus::kIntegrityError), "integrity_error");
  EXPECT_STREQ(to_string(BusOp::kWrite), "write");
  EXPECT_STREQ(to_string(DataFormat::kWord), "32-bit");
}

}  // namespace
}  // namespace secbus::bus
