// Lease audit log + fleet timeline + /status document, pinned over
// FakeTransport's manual clock: a full grant -> heartbeat -> expiry ->
// reassignment -> zombie-refusal -> commit story must leave exactly the
// expected audit record sequence behind, the Chrome-trace timeline built
// from it must reconcile (unmatched == 0), and the status/registry
// surfaces the HTTP plane serves must reflect the same state.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/audit.hpp"
#include "campaign/fleet.hpp"
#include "campaign/telemetry.hpp"
#include "net/fake_transport.hpp"
#include "obs/exposition.hpp"
#include "obs/fleet_timeline.hpp"
#include "scenario/runner.hpp"

namespace secbus::campaign {
namespace {

using net::ConnId;
using net::FakeTransport;
using util::Json;

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_audit_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

// --- record (de)serialization -----------------------------------------------

TEST(AuditRecordIo, RoundTripsAllFields) {
  AuditRecord record;
  record.t_ms = 1234;
  record.event = AuditEvent::kReassigned;
  record.shard = 7;
  record.generation = 3;
  record.epoch = 2;
  record.worker = "w-9";
  record.detail = "previous lease expired";
  AuditRecord back;
  ASSERT_TRUE(audit_record_from_json(audit_record_to_json(record), back));
  EXPECT_EQ(back.t_ms, record.t_ms);
  EXPECT_EQ(back.event, record.event);
  EXPECT_EQ(back.shard, record.shard);
  EXPECT_EQ(back.generation, record.generation);
  EXPECT_EQ(back.epoch, record.epoch);
  EXPECT_EQ(back.worker, record.worker);
  EXPECT_EQ(back.detail, record.detail);
}

TEST(AuditRecordIo, EpochDefaultsToZeroOnOldLogs) {
  // Logs written before the epoch field must read back as epoch 0.
  Json j;
  std::string error;
  ASSERT_TRUE(Json::parse(R"({"t_ms":5,"event":"grant","shard":1,)"
                          R"("generation":2,"worker":"w"})",
                          j, &error))
      << error;
  AuditRecord back;
  ASSERT_TRUE(audit_record_from_json(j, back));
  EXPECT_EQ(back.epoch, 0u);
}

TEST(AuditRecordIo, DetailOmittedWhenEmpty) {
  AuditRecord record;
  record.worker = "w";
  EXPECT_EQ(audit_record_to_json(record).find("detail"), nullptr);
}

TEST(AuditRecordIo, EveryEventNameRoundTrips) {
  for (AuditEvent e :
       {AuditEvent::kGrant, AuditEvent::kReassigned, AuditEvent::kExtend,
        AuditEvent::kExpire, AuditEvent::kRelease, AuditEvent::kRefuse,
        AuditEvent::kCommit, AuditEvent::kServerStart}) {
    AuditEvent back = AuditEvent::kCommit;
    ASSERT_TRUE(parse_audit_event(to_string(e), back)) << to_string(e);
    EXPECT_EQ(back, e);
  }
  AuditEvent out;
  EXPECT_FALSE(parse_audit_event("granted", out));
}

TEST(AuditRecordIo, FileNameConvention) {
  EXPECT_EQ(audit_file_name("ci_smoke"), "ci_smoke.fleet-audit.jsonl");
}

// --- the server's audit trail over FakeTransport ----------------------------

class FleetAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(
        load_campaign_file(example_path("ci_smoke.json"), spec_, &error))
        << error;
  }

  FleetServerOptions options(std::size_t shards, const TempDir& dir) {
    FleetServerOptions opt;
    opt.shards = shards;
    opt.lease_timeout_ms = 1000;
    opt.heartbeat_ms = 200;
    opt.out_dir = dir.path();
    opt.quiet = true;
    return opt;
  }

  ConnId handshake(FleetServer& server, const std::string& worker) {
    const ConnId conn = fake_.connect_client();
    fake_.client_send(conn, fleet_msg::hello(worker));
    step(server);
    (void)fake_.take_client_inbox(conn);
    return conn;
  }

  void step(FleetServer& server) {
    std::string error;
    ASSERT_TRUE(server.step(0, &error)) << error;
  }

  LeaseGrant grant_via(FleetServer& server, ConnId conn) {
    fake_.client_send(conn, fleet_msg::request());
    step(server);
    const std::vector<Json> inbox = fake_.take_client_inbox(conn);
    LeaseGrant grant;
    EXPECT_EQ(inbox.size(), 1u);
    if (inbox.empty()) return grant;
    EXPECT_EQ(fleet_msg::type_of(inbox[0]), "grant");
    std::uint64_t shard = 0;
    EXPECT_TRUE(inbox[0].find("shard")->to_u64(shard));
    EXPECT_TRUE(inbox[0].find("generation")->to_u64(grant.generation));
    grant.shard = static_cast<std::size_t>(shard);
    return grant;
  }

  void run_and_submit(FleetServer& server, ConnId conn,
                      const LeaseGrant& grant) {
    ShardRunOptions run;
    run.shard = grant.shard;
    run.shards = server.leases().shard_count();
    run.threads = 2;
    const ShardRunOutcome outcome = run_shard(server.specs(), run);
    const ShardResultFile file =
        to_shard_file(spec_.name, outcome, grant.shard,
                      server.leases().shard_count(), server.grid_fp());
    ProgressSampler sampler;
    sampler.begin(spec_.name, grant.shard, server.leases().shard_count());
    const ProgressRecord record = sampler.sample(
        outcome.indices.size(), outcome.indices.size(), /*finished=*/true);
    fake_.client_send(conn, fleet_msg::shard_done(grant.shard,
                                                  grant.generation, record,
                                                  file));
    step(server);
  }

  std::vector<AuditRecord> read_log(const FleetServer& server) {
    std::vector<AuditRecord> records;
    std::string error;
    EXPECT_TRUE(read_audit_log(server.audit_path(), records, &error))
        << error;
    return records;
  }

  FakeTransport fake_;
  CampaignSpec spec_;
};

TEST_F(FleetAuditTest, LeaseLifecycleLeavesExactAuditSequence) {
  TempDir dir("lifecycle");
  FleetServer server(fake_, spec_, options(1, dir));
  ASSERT_FALSE(server.audit_path().empty());

  // Grant to w1, one accepted heartbeat, then silence past the deadline.
  const ConnId w1 = handshake(server, "w1");
  const LeaseGrant grant = grant_via(server, w1);
  ASSERT_EQ(grant.generation, 1u);
  ProgressRecord running;
  running.campaign = spec_.name;
  running.total = 10;
  fake_.advance_ms(800);
  fake_.client_send(w1, fleet_msg::heartbeat(0, grant.generation, running));
  step(server);
  fake_.advance_ms(1500);
  step(server);
  ASSERT_EQ(server.leases().state(0), LeaseManager::ShardState::kPending);

  // w2 picks the shard back up (a reassignment), the zombie is fenced off
  // on both its late heartbeat and its late result, then w2 commits.
  const ConnId w2 = handshake(server, "w2");
  const LeaseGrant regrant = grant_via(server, w2);
  ASSERT_EQ(regrant.generation, 2u);
  fake_.client_send(w1, fleet_msg::heartbeat(0, grant.generation, running));
  step(server);
  (void)fake_.take_client_inbox(w1);
  run_and_submit(server, w1, grant);  // stale generation: refused
  (void)fake_.take_client_inbox(w1);
  run_and_submit(server, w2, regrant);
  ASSERT_TRUE(server.finished());

  const std::vector<AuditRecord> log = read_log(server);
  std::vector<std::string> events;
  events.reserve(log.size());
  for (const AuditRecord& r : log) events.push_back(to_string(r.event));
  EXPECT_EQ(events,
            (std::vector<std::string>{"server_start", "grant", "extend",
                                      "expire", "reassigned", "refuse",
                                      "refuse", "commit"}));

  // Timestamps are server-relative and nondecreasing under the manual
  // clock; generations fence exactly as the lease manager did. A fresh
  // server is epoch 0 on every record.
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].t_ms, log[i - 1].t_ms) << "record " << i;
  }
  for (const AuditRecord& r : log) EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(log[1].worker, "w1");
  EXPECT_EQ(log[1].generation, 1u);
  EXPECT_EQ(log[3].worker, "w1");  // the expiry names the lapsed holder
  EXPECT_EQ(log[4].worker, "w2");
  EXPECT_EQ(log[4].generation, 2u);
  EXPECT_EQ(log[5].detail, "stale heartbeat");
  EXPECT_EQ(log[6].detail, "stale result");
  EXPECT_EQ(log[7].worker, "w2");

  // The timeline built from this log reconciles exactly: two spans (one
  // expired, one committed), the extend folded in, three instants (one
  // expiry, two refusals), nothing unmatched.
  obs::FleetTimelineStats stats;
  const std::string timeline = obs::fleet_timeline_json(log, &stats);
  EXPECT_EQ(stats.tracks, 2u);
  EXPECT_EQ(stats.lease_spans, 2u);
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.released, 0u);
  EXPECT_EQ(stats.extends, 1u);
  EXPECT_EQ(stats.instants, 3u);
  EXPECT_EQ(stats.unmatched, 0u);
  EXPECT_EQ(stats.epochs, 1u);  // one server_start, one incarnation
  EXPECT_EQ(stats.lost, 0u);    // nothing was open when it started
  // It is a loadable Chrome trace document.
  Json doc;
  std::string error;
  ASSERT_TRUE(Json::parse(timeline, doc, &error)) << error;
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_GE(doc.find("traceEvents")->items().size(), 5u);
}

TEST_F(FleetAuditTest, DisconnectIsAuditedAsRelease) {
  TempDir dir("release");
  FleetServer server(fake_, spec_, options(1, dir));
  const ConnId w1 = handshake(server, "w1");
  (void)grant_via(server, w1);
  fake_.client_close(w1);
  step(server);

  const std::vector<AuditRecord> log = read_log(server);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].event, AuditEvent::kServerStart);
  EXPECT_EQ(log[2].event, AuditEvent::kRelease);
  EXPECT_EQ(log[2].worker, "w1");

  obs::FleetTimelineStats stats;
  (void)obs::fleet_timeline_json(log, &stats);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.unmatched, 0u);
}

TEST_F(FleetAuditTest, AuditCanBeDisabled) {
  TempDir dir("disabled");
  FleetServerOptions opt = options(1, dir);
  opt.audit = false;
  FleetServer server(fake_, spec_, opt);
  EXPECT_TRUE(server.audit_path().empty());
  const ConnId w1 = handshake(server, "w1");
  (void)grant_via(server, w1);
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir.path()) / audit_file_name(spec_.name)));
}

// --- /status + fleet registry ----------------------------------------------

TEST_F(FleetAuditTest, StatusJsonTracksLeasesAndWorkers) {
  TempDir dir("status");
  FleetServer server(fake_, spec_, options(2, dir));
  const ConnId w1 = handshake(server, "w1");
  const LeaseGrant grant = grant_via(server, w1);

  Json status = server.status_json();
  EXPECT_EQ(status.find("campaign")->as_string(), spec_.name);
  std::uint64_t u = 0;
  ASSERT_TRUE(status.find("leased")->to_u64(u));
  EXPECT_EQ(u, 1u);
  EXPECT_FALSE(status.find("finished")->as_bool());
  const Json& lease0 = status.find("leases")->items()[0];
  EXPECT_EQ(lease0.find("state")->as_string(), "leased");
  EXPECT_EQ(lease0.find("worker")->as_string(), "w1");
  ASSERT_NE(lease0.find("deadline_ms"), nullptr);
  const Json& lease1 = status.find("leases")->items()[1];
  EXPECT_EQ(lease1.find("state")->as_string(), "pending");
  EXPECT_EQ(lease1.find("deadline_ms"), nullptr);
  ASSERT_EQ(status.find("workers")->items().size(), 1u);
  const Json& worker0 = status.find("workers")->items()[0];
  EXPECT_EQ(worker0.find("worker")->as_string(), "w1");
  EXPECT_TRUE(worker0.find("connected")->as_bool());

  // The same document renders as the single-screen `campaign top` view.
  const std::string view = render_fleet_top(status);
  EXPECT_NE(view.find(spec_.name), std::string::npos);
  EXPECT_NE(view.find("w1"), std::string::npos);
  EXPECT_NE(view.find("leased"), std::string::npos);

  run_and_submit(server, w1, grant);
  const LeaseGrant grant2 = grant_via(server, w1);
  run_and_submit(server, w1, grant2);
  ASSERT_TRUE(server.finished());
  status = server.status_json();
  EXPECT_TRUE(status.find("finished")->as_bool());
  ASSERT_TRUE(status.find("done")->to_u64(u));
  EXPECT_EQ(u, 2u);
}

TEST_F(FleetAuditTest, FleetRegistrySumsWorkerSnapshots) {
  TempDir dir("registry");
  FleetServer server(fake_, spec_, options(2, dir));
  const ConnId w1 = handshake(server, "w1");
  const ConnId w2 = handshake(server, "w2");
  const LeaseGrant g1 = grant_via(server, w1);
  const LeaseGrant g2 = grant_via(server, w2);

  // Each worker heartbeats a snapshot; the server publishes both per
  // worker and summed under fleet.total.* (counters stay counters).
  ProgressRecord running;
  running.campaign = spec_.name;
  obs::Registry snap1;
  snap1.counter("worker.jobs_done", 3);
  snap1.counter("net.frames_out", 10);
  snap1.gauge("worker.jobs_per_sec", 1.5);
  fake_.client_send(
      w1, fleet_msg::heartbeat(g1.shard, g1.generation, running, &snap1));
  obs::Registry snap2;
  snap2.counter("worker.jobs_done", 4);
  snap2.counter("net.frames_out", 20);
  snap2.gauge("worker.jobs_per_sec", 2.25);
  fake_.client_send(
      w2, fleet_msg::heartbeat(g2.shard, g2.generation, running, &snap2));
  step(server);

  const obs::Registry reg = server.fleet_registry();
  EXPECT_EQ(reg.counter_value("fleet.jobs"),
            static_cast<std::uint64_t>(server.specs().size()));
  EXPECT_EQ(reg.counter_value("fleet.shards"), 2u);
  EXPECT_EQ(reg.value("fleet.workers.connected"), 2.0);
  // Ordinals follow first appearance: w1 is worker0, w2 worker1.
  EXPECT_EQ(reg.counter_value("fleet.worker0.worker.jobs_done"), 3u);
  EXPECT_EQ(reg.counter_value("fleet.worker1.worker.jobs_done"), 4u);
  EXPECT_EQ(reg.counter_value("fleet.total.worker.jobs_done"), 7u);
  EXPECT_EQ(reg.counter_value("fleet.total.net.frames_out"), 30u);
  const obs::Metric* total_rate = reg.find("fleet.total.worker.jobs_per_sec");
  ASSERT_NE(total_rate, nullptr);
  EXPECT_FALSE(total_rate->is_counter);
  EXPECT_DOUBLE_EQ(total_rate->value, 3.75);

  // The registry renders as valid Prometheus exposition with the fleet
  // totals present.
  const std::string text = obs::prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE secbus_fleet_total_worker_jobs_done counter\n"
                      "secbus_fleet_total_worker_jobs_done 7\n"),
            std::string::npos);
}

// --- the worker-side snapshot ----------------------------------------------

TEST(WorkerMetricsSnapshot, CarriesThroughputCacheBackendAndNet) {
  ProgressRecord progress;
  progress.done = 5;
  progress.total = 8;
  progress.elapsed_ms = 2000;
  progress.jobs_per_sec = 2.5;
  progress.format_cache_hits = 30;
  progress.format_cache_misses = 10;
  const obs::Registry snap = worker_metrics_snapshot(progress);
  EXPECT_EQ(snap.counter_value("worker.jobs_done"), 5u);
  EXPECT_EQ(snap.counter_value("worker.jobs_total"), 8u);
  EXPECT_EQ(snap.counter_value("worker.elapsed_ms"), 2000u);
  EXPECT_DOUBLE_EQ(snap.value("worker.jobs_per_sec"), 2.5);
  EXPECT_EQ(snap.counter_value("core.format_cache.hits"), 30u);
  EXPECT_DOUBLE_EQ(snap.value("core.format_cache.hit_rate"), 0.75);
  // The crypto backend and wire counters ride along for the exposition.
  EXPECT_NE(snap.find("crypto.backend_id"), nullptr);
  EXPECT_NE(snap.find("net.frames_in"), nullptr);
  EXPECT_NE(snap.find("net.bytes_out"), nullptr);
}

}  // namespace
}  // namespace secbus::campaign
