// Campaign files: grid expansion semantics (attack axis outermost, seed
// counts, labels) and the error paths a hand-written JSON file can hit —
// every error must name the offending JSON path.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

namespace secbus::campaign {
namespace {

CampaignSpec parse_ok(const std::string& text) {
  util::Json j;
  std::string error;
  EXPECT_TRUE(util::Json::parse(text, j, &error)) << error;
  CampaignSpec campaign;
  EXPECT_TRUE(campaign_from_json(j, campaign, &error)) << error;
  return campaign;
}

std::string parse_error(const std::string& text) {
  util::Json j;
  std::string error;
  EXPECT_TRUE(util::Json::parse(text, j, &error)) << error;
  CampaignSpec campaign;
  EXPECT_FALSE(campaign_from_json(j, campaign, &error));
  EXPECT_FALSE(error.empty());
  return error;
}

constexpr const char* kTinyBase = R"(
    "base": {
      "soc": {
        "processors": 1,
        "dedicated_ip": false,
        "bram_size": 65536,
        "ddr_size": 262144,
        "ddr_protected_base": 2147483648,
        "ddr_protected_size": 65536,
        "transactions_per_cpu": 10,
        "seed": 7
      },
      "max_cycles": 1000000
    })";

TEST(Campaign, AttackAxisIsOutermostAndLabelsVariants) {
  const CampaignSpec c = parse_ok(std::string(R"({
    "name": "grid",)") + kTinyBase + R"(,
    "grid": {
      "attack": ["hijack", "external-spoof"],
      "protection": ["plaintext", "cipher+integrity"],
      "seeds": 3
    }
  })");
  EXPECT_EQ(c.job_count(), 2u * 2u * 3u);
  const std::vector<scenario::ScenarioSpec> jobs = expand_campaign(c);
  ASSERT_EQ(jobs.size(), 12u);
  // Attack outermost: first half all hijack, second half all spoof.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(jobs[i].attack.kind, scenario::AttackKind::kHijack) << i;
    EXPECT_EQ(jobs[6 + i].attack.kind, scenario::AttackKind::kExternalSpoof)
        << i;
  }
  EXPECT_EQ(jobs[0].variant,
            "attack=hijack,protection=plaintext,seed=7");
  // Seed repeats derive from the base seed deterministically.
  EXPECT_EQ(jobs[1].soc.seed, scenario::derive_seed(7, 1));
  EXPECT_EQ(jobs[2].soc.seed, scenario::derive_seed(7, 2));
  // The campaign name becomes the scenario name when the base has none.
  EXPECT_EQ(jobs[0].name, "grid");
}

TEST(Campaign, AttackObjectsInheritBaseShaping) {
  const CampaignSpec c = parse_ok(std::string(R"({
    "name": "shaped",)") + kTinyBase + R"(,
    "grid": {
      "attack": [
        {"kind": "flood-in-policy", "flood_writes": 123},
        "flood-throttled"
      ]
    }
  })");
  ASSERT_EQ(c.attacks.size(), 2u);
  EXPECT_EQ(c.attacks[0].flood_writes, 123u);
  // Unset knobs keep the base plan's defaults.
  EXPECT_EQ(c.attacks[0].flood_burst_beats, c.base.attack.flood_burst_beats);
  EXPECT_EQ(c.attacks[1].kind, scenario::AttackKind::kFloodThrottled);
  EXPECT_EQ(c.attacks[1].flood_writes, c.base.attack.flood_writes);
}

TEST(Campaign, DuplicateAttackKindsGetDistinctCellLabels) {
  // Two differently-shaped floods of the same kind must not merge into one
  // report cell: their labels carry an occurrence suffix.
  const CampaignSpec c = parse_ok(std::string(R"({
    "name": "dup",)") + kTinyBase + R"(,
    "grid": {
      "attack": [
        {"kind": "flood-in-policy", "flood_writes": 50},
        "hijack",
        {"kind": "flood-in-policy", "flood_writes": 400}
      ],
      "seeds": 2
    }
  })");
  const std::vector<scenario::ScenarioSpec> jobs = expand_campaign(c);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].variant, "attack=flood-in-policy#1,seed=7");
  EXPECT_EQ(jobs[2].variant,
            "attack=hijack,seed=7");  // unique kinds keep the bare name
  EXPECT_EQ(jobs[4].variant, "attack=flood-in-policy#2,seed=7");
  EXPECT_EQ(jobs[0].attack.flood_writes, 50u);
  EXPECT_EQ(jobs[4].attack.flood_writes, 400u);
}

TEST(Campaign, ExplicitSeedArrayWinsOverDerivation) {
  const CampaignSpec c = parse_ok(std::string(R"({
    "name": "seeded",)") + kTinyBase + R"(,
    "grid": { "seeds": [101, 202] }
  })");
  ASSERT_EQ(c.axes.seeds.size(), 2u);
  EXPECT_EQ(c.axes.seeds[0], 101u);
  EXPECT_EQ(c.axes.seeds[1], 202u);
}

TEST(Campaign, NoGridMeansOneJob) {
  const CampaignSpec c =
      parse_ok(std::string(R"({"name": "solo",)") + kTinyBase + "}");
  EXPECT_EQ(c.job_count(), 1u);
  EXPECT_EQ(expand_campaign(c).size(), 1u);
}

TEST(CampaignErrors, MissingName) {
  const std::string err = parse_error("{}");
  EXPECT_NE(err.find("name"), std::string::npos) << err;
}

TEST(CampaignErrors, NameMustBeFilenameSafe) {
  // The name becomes the report filename; path separators must not let a
  // campaign file write outside the output directory.
  for (const char* bad : {"../evil", "a/b", "a\\b", ".hidden"}) {
    const std::string err = parse_error(std::string(R"({"name": ")") +
                                        (std::string(bad) == "a\\b"
                                             ? "a\\\\b"
                                             : bad) +
                                        R"("})");
    EXPECT_NE(err.find("name"), std::string::npos) << bad << ": " << err;
  }
}

TEST(CampaignErrors, UnknownTopLevelKey) {
  const std::string err =
      parse_error(R"({"name": "x", "grids": {}})");
  EXPECT_NE(err.find("grids"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
}

TEST(CampaignErrors, UnknownGridKeyNamesPath) {
  const std::string err = parse_error(
      R"({"name": "x", "grid": {"protectoin": ["full"]}})");
  EXPECT_NE(err.find("grid.protectoin"), std::string::npos) << err;
}

TEST(CampaignErrors, BadEnumInGridNamesIndexedPath) {
  const std::string err = parse_error(
      R"({"name": "x", "grid": {"protection": ["plaintext", "fulll"]}})");
  EXPECT_NE(err.find("grid.protection[1]"), std::string::npos) << err;
}

TEST(CampaignErrors, BadAttackKindNamesIndexedPath) {
  const std::string err = parse_error(
      R"({"name": "x", "grid": {"attack": ["hijack", "hijac"]}})");
  EXPECT_NE(err.find("grid.attack[1]"), std::string::npos) << err;
}

TEST(CampaignErrors, SeedCountOutOfRange) {
  const std::string err = parse_error(
      R"({"name": "x", "grid": {"seeds": 20000}})");
  EXPECT_NE(err.find("grid.seeds"), std::string::npos) << err;
  EXPECT_NE(err.find("[1, 10000]"), std::string::npos) << err;
  const std::string err0 =
      parse_error(R"({"name": "x", "grid": {"seeds": 0}})");
  EXPECT_NE(err0.find("grid.seeds"), std::string::npos) << err0;
}

TEST(CampaignErrors, PlacementOutsideEveryGridTopology) {
  const std::string err = parse_error(std::string(R"({
    "name": "x",
    "base": {"soc": {"memory_segment": 3}},
    "grid": {"topology": ["mesh2x2", "flat"]}
  })"));
  EXPECT_NE(err.find("base.soc.memory_segment"), std::string::npos) << err;
  EXPECT_NE(err.find("flat"), std::string::npos) << err;
}

TEST(CampaignErrors, CpusAxisMustFitProtectedWindow) {
  // 64 KiB protected window: 16 CPUs would get < 4 KiB each.
  const std::string err = parse_error(std::string(R"({
    "name": "x",)") + kTinyBase + R"(,
    "grid": {"cpus": [1, 16]}
  })");
  EXPECT_NE(err.find("grid.cpus[1]"), std::string::npos) << err;
}

TEST(CampaignErrors, BaseLineBytesMustTileTheProtectedWindow) {
  // 65552 is not a whole number of 64-byte lines; without this check the
  // IntegrityCore would SECBUS_ASSERT mid-run instead of failing validate.
  const std::string err = parse_error(R"({
    "name": "x",
    "base": {"soc": {"ddr_protected_size": 65552, "line_bytes": 64}}
  })");
  EXPECT_NE(err.find("base.soc.line_bytes"), std::string::npos) << err;

  // A tiling-but-not-power-of-two line count fails too (hash-tree shape).
  const std::string err2 = parse_error(R"({
    "name": "x",
    "base": {"soc": {"ddr_protected_size": 49152, "line_bytes": 16}}
  })");
  EXPECT_NE(err2.find("base.soc.line_bytes"), std::string::npos) << err2;
}

TEST(CampaignErrors, JobCapIsEnforced) {
  const std::string err = parse_error(R"({
    "name": "x",
    "grid": {"extra_rules": [0,1,2,3,4,5,6,7,8,9,
                             10,11,12,13,14,15,16,17,18,19],
             "line_bytes": [16, 32, 64, 128],
             "cpus": [1, 2, 3],
             "external_fraction": [0.1, 0.2, 0.3, 0.4, 0.5],
             "seeds": 10000}
  })");
  EXPECT_NE(err.find("cap"), std::string::npos) << err;
}

TEST(CampaignErrors, LoadFileReportsMissingFile) {
  CampaignSpec campaign;
  std::string error;
  EXPECT_FALSE(
      load_campaign_file("/nonexistent/campaign.json", campaign, &error));
  EXPECT_NE(error.find("/nonexistent/campaign.json"), std::string::npos);
}

}  // namespace
}  // namespace secbus::campaign
