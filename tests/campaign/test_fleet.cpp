// Fleet control plane: lease state machine + server protocol over the
// in-process FakeTransport (manual clock, no sockets).
//
// The scenarios the fleet exists for are pinned here with deterministic
// timing: grant -> heartbeat -> expiry -> reassignment; double-grant
// prevention; a worker reconnecting after its lease was reassigned being
// refused and told to drop the shard; and a full campaign driven through
// scripted workers whose merged output is byte-identical to a direct run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/fleet.hpp"
#include "campaign/report.hpp"
#include "campaign/telemetry.hpp"
#include "net/fake_transport.hpp"
#include "scenario/runner.hpp"

namespace secbus::campaign {
namespace {

using net::ConnId;
using net::FakeTransport;
using util::Json;

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_fleet_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

// --- LeaseManager -----------------------------------------------------------

TEST(LeaseManager, GrantsLowestPendingWithFreshGenerations) {
  LeaseManager leases;
  leases.reset(3, 1000);
  const auto g0 = leases.acquire("w1", 0);
  const auto g1 = leases.acquire("w1", 0);
  const auto g2 = leases.acquire("w2", 0);
  ASSERT_TRUE(g0 && g1 && g2);
  EXPECT_EQ(g0->shard, 0u);
  EXPECT_EQ(g1->shard, 1u);
  EXPECT_EQ(g2->shard, 2u);
  EXPECT_EQ(g0->generation, 1u);
  EXPECT_FALSE(g0->reassigned);
  // Every shard leased: no double grant, ever.
  EXPECT_FALSE(leases.acquire("w3", 0).has_value());
  EXPECT_EQ(leases.leased_count(), 3u);
  EXPECT_EQ(leases.regrants(), 0u);
}

TEST(LeaseManager, HeartbeatExtendsExpiryReassigns) {
  LeaseManager leases;
  leases.reset(1, 1000);
  const auto grant = leases.acquire("w1", 0);
  ASSERT_TRUE(grant.has_value());

  // Heartbeat at 800 pushes the deadline to 1800: nothing expires at 1500.
  EXPECT_TRUE(leases.heartbeat("w1", 0, grant->generation, 800));
  EXPECT_TRUE(leases.expire(1500).empty());
  EXPECT_EQ(leases.state(0), LeaseManager::ShardState::kLeased);

  // Silence past the deadline: the shard frees.
  const std::vector<std::size_t> freed = leases.expire(1800);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 0u);
  EXPECT_EQ(leases.state(0), LeaseManager::ShardState::kPending);

  // Reassignment bumps the generation and counts as a regrant.
  const auto regrant = leases.acquire("w2", 2000);
  ASSERT_TRUE(regrant.has_value());
  EXPECT_EQ(regrant->shard, 0u);
  EXPECT_EQ(regrant->generation, grant->generation + 1);
  EXPECT_TRUE(regrant->reassigned);
  EXPECT_EQ(leases.regrants(), 1u);

  // The zombie's old generation is dead: heartbeat and completion refuse.
  EXPECT_FALSE(leases.heartbeat("w1", 0, grant->generation, 2100));
  EXPECT_EQ(leases.complete("w1", 0, grant->generation),
            LeaseManager::Completion::kStale);
  // The new holder is unaffected.
  EXPECT_TRUE(leases.heartbeat("w2", 0, regrant->generation, 2100));
  EXPECT_EQ(leases.complete("w2", 0, regrant->generation),
            LeaseManager::Completion::kAccepted);
  EXPECT_TRUE(leases.all_done());
}

TEST(LeaseManager, CompletionVerdicts) {
  LeaseManager leases;
  leases.reset(2, 1000);
  const auto grant = leases.acquire("w1", 0);
  ASSERT_TRUE(grant.has_value());
  // Wrong worker, wrong generation, unknown shard: all stale.
  EXPECT_EQ(leases.complete("w2", 0, grant->generation),
            LeaseManager::Completion::kStale);
  EXPECT_EQ(leases.complete("w1", 0, grant->generation + 1),
            LeaseManager::Completion::kStale);
  EXPECT_EQ(leases.complete("w1", 5, 1), LeaseManager::Completion::kStale);
  // Never-granted shard: stale too.
  EXPECT_EQ(leases.complete("w1", 1, 0), LeaseManager::Completion::kStale);

  EXPECT_EQ(leases.complete("w1", 0, grant->generation),
            LeaseManager::Completion::kAccepted);
  // A late duplicate of a finished shard is refused, distinctly.
  EXPECT_EQ(leases.complete("w1", 0, grant->generation),
            LeaseManager::Completion::kDuplicate);
}

TEST(LeaseManager, ReleaseWorkerFreesOnlyTheirs) {
  LeaseManager leases;
  leases.reset(3, 1000);
  (void)leases.acquire("w1", 0);
  (void)leases.acquire("w2", 0);
  (void)leases.acquire("w1", 0);
  const std::vector<std::size_t> freed = leases.release_worker("w1");
  EXPECT_EQ(freed, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(leases.state(1), LeaseManager::ShardState::kLeased);
  EXPECT_EQ(leases.pending_count(), 2u);
}

TEST(LeaseManager, NextDeadlineTracksEarliestLease) {
  LeaseManager leases;
  leases.reset(2, 1000);
  EXPECT_FALSE(leases.next_deadline_ms().has_value());
  (void)leases.acquire("w1", 100);
  (void)leases.acquire("w2", 300);
  ASSERT_TRUE(leases.next_deadline_ms().has_value());
  EXPECT_EQ(*leases.next_deadline_ms(), 1100u);
  EXPECT_TRUE(leases.heartbeat("w1", 0, 1, 500));
  EXPECT_EQ(*leases.next_deadline_ms(), 1300u);
}

// --- FleetServer over FakeTransport -----------------------------------------

class FleetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(load_campaign_file(example_path("ci_smoke.json"), spec_,
                                   &error))
        << error;
  }

  FleetServerOptions options(std::size_t shards, const TempDir& dir) {
    FleetServerOptions opt;
    opt.shards = shards;
    opt.lease_timeout_ms = 1000;
    opt.heartbeat_ms = 200;
    opt.out_dir = dir.path();
    opt.quiet = true;
    return opt;
  }

  // connect + hello + campaign handshake; returns the new connection and
  // asserts the campaign announcement arrived.
  ConnId handshake(FleetServer& server, const std::string& worker) {
    const ConnId conn = fake_.connect_client();
    fake_.client_send(conn, fleet_msg::hello(worker));
    step(server);
    const std::vector<Json> inbox = fake_.take_client_inbox(conn);
    EXPECT_EQ(inbox.size(), 1u) << "expected exactly the campaign message";
    if (!inbox.empty()) {
      EXPECT_EQ(fleet_msg::type_of(inbox[0]), "campaign");
      std::uint64_t fp = 0;
      EXPECT_TRUE(inbox[0].find("grid_fingerprint")->to_u64(fp));
      EXPECT_EQ(fp, server.grid_fp());
    }
    return conn;
  }

  void step(FleetServer& server) {
    std::string error;
    ASSERT_TRUE(server.step(0, &error)) << error;
  }

  // One message of `type` in the inbox; returns it.
  static Json expect_only(const std::vector<Json>& inbox,
                          const std::string& type) {
    EXPECT_EQ(inbox.size(), 1u);
    Json msg = inbox.empty() ? Json::object() : inbox[0];
    EXPECT_EQ(fleet_msg::type_of(msg), type);
    return msg;
  }

  static LeaseGrant grant_of(const Json& msg) {
    LeaseGrant grant;
    std::uint64_t shard = 0;
    EXPECT_TRUE(msg.find("shard")->to_u64(shard));
    EXPECT_TRUE(msg.find("generation")->to_u64(grant.generation));
    grant.shard = static_cast<std::size_t>(shard);
    return grant;
  }

  // Runs the granted shard for real and submits its result.
  void run_and_submit(FleetServer& server, ConnId conn,
                      const LeaseGrant& grant) {
    ShardRunOptions run;
    run.shard = grant.shard;
    run.shards = server.leases().shard_count();
    run.threads = 2;
    const ShardRunOutcome outcome = run_shard(server.specs(), run);
    const ShardResultFile file =
        to_shard_file(spec_.name, outcome, grant.shard,
                      server.leases().shard_count(), server.grid_fp());
    ProgressSampler sampler;
    sampler.begin(spec_.name, grant.shard, server.leases().shard_count());
    const ProgressRecord record = sampler.sample(
        outcome.indices.size(), outcome.indices.size(), /*finished=*/true);
    fake_.client_send(conn, fleet_msg::shard_done(grant.shard,
                                                  grant.generation, record,
                                                  file));
  }

  FakeTransport fake_;
  CampaignSpec spec_;
};

TEST_F(FleetServerTest, HelloRequiredBeforeAnythingElse) {
  TempDir dir("hello-required");
  FleetServer server(fake_, spec_, options(2, dir));
  const ConnId conn = fake_.connect_client();
  fake_.client_send(conn, fleet_msg::request());
  step(server);
  const Json reply = expect_only(fake_.take_client_inbox(conn), "error");
  EXPECT_NE(reply.find("message")->as_string().find("hello required"),
            std::string::npos);
  EXPECT_FALSE(fake_.client_open(conn));
}

TEST_F(FleetServerTest, ProtocolVersionMismatchIsRejected) {
  TempDir dir("proto-mismatch");
  FleetServer server(fake_, spec_, options(2, dir));
  const ConnId conn = fake_.connect_client();
  Json bad_hello = fleet_msg::hello("w-from-the-future");
  bad_hello.set("protocol", Json::number(std::uint64_t{99}));
  fake_.client_send(conn, bad_hello);
  step(server);
  const Json reply = expect_only(fake_.take_client_inbox(conn), "error");
  EXPECT_NE(reply.find("message")->as_string().find("protocol mismatch"),
            std::string::npos);
  EXPECT_FALSE(fake_.client_open(conn));
}

TEST_F(FleetServerTest, GrantHeartbeatExpiryReassignmentRefusal) {
  TempDir dir("expiry-reassign");
  FleetServer server(fake_, spec_, options(1, dir));

  const ConnId w1 = handshake(server, "w1");
  fake_.client_send(w1, fleet_msg::request());
  step(server);
  const LeaseGrant grant =
      grant_of(expect_only(fake_.take_client_inbox(w1), "grant"));
  EXPECT_EQ(grant.shard, 0u);
  EXPECT_EQ(grant.generation, 1u);

  // Heartbeats keep the lease alive across the nominal timeout.
  ProgressRecord running;
  running.campaign = spec_.name;
  running.total = 10;
  for (int i = 0; i < 3; ++i) {
    fake_.advance_ms(800);
    running.done = static_cast<std::size_t>(i);
    fake_.client_send(w1, fleet_msg::heartbeat(0, grant.generation, running));
    step(server);
    EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kLeased)
        << "heartbeat " << i << " should have extended the lease";
    EXPECT_TRUE(fake_.take_client_inbox(w1).empty());
  }
  // Heartbeats mirror into a progress sidecar the status command can read.
  std::vector<ShardProgress> progress;
  ASSERT_TRUE(scan_progress_dir(dir.path(), progress));
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_TRUE(progress[0].parsed);
  EXPECT_EQ(progress[0].last.done, 2u);

  // w1 goes silent (SIGSTOP'd, hung, partitioned): the lease expires and
  // the shard goes to the next requester with a bumped generation.
  fake_.advance_ms(1500);
  step(server);
  EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kPending);

  const ConnId w2 = handshake(server, "w2");
  fake_.client_send(w2, fleet_msg::request());
  step(server);
  const LeaseGrant regrant =
      grant_of(expect_only(fake_.take_client_inbox(w2), "grant"));
  EXPECT_EQ(regrant.shard, 0u);
  EXPECT_EQ(regrant.generation, 2u);
  EXPECT_EQ(server.reassignments(), 1u);

  // The zombie wakes up and reconnects: its stale generation is refused
  // and it is told to drop the shard.
  const ConnId w1_again = handshake(server, "w1");
  fake_.client_send(w1_again,
                    fleet_msg::heartbeat(0, grant.generation, running));
  step(server);
  Json refuse = expect_only(fake_.take_client_inbox(w1_again), "refuse");
  EXPECT_TRUE(refuse.find("drop")->as_bool());

  // Its completed result is refused the same way...
  run_and_submit(server, w1_again, grant);
  step(server);
  refuse = expect_only(fake_.take_client_inbox(w1_again), "refuse");
  EXPECT_TRUE(refuse.find("drop")->as_bool());
  EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kLeased);

  // ...while the current holder's lands.
  run_and_submit(server, w2, regrant);
  step(server);
  EXPECT_TRUE(server.finished());
  EXPECT_EQ(server.results().size(), server.specs().size());
}

TEST_F(FleetServerTest, FreedShardIsPushedToWaitingWorker) {
  TempDir dir("pushed-grant");
  FleetServer server(fake_, spec_, options(1, dir));

  const ConnId w1 = handshake(server, "w1");
  fake_.client_send(w1, fleet_msg::request());
  step(server);
  (void)grant_of(expect_only(fake_.take_client_inbox(w1), "grant"));

  // Everything is leased: w2 is parked with a wait.
  const ConnId w2 = handshake(server, "w2");
  fake_.client_send(w2, fleet_msg::request());
  step(server);
  expect_only(fake_.take_client_inbox(w2), "wait");

  // w1's lease expires; the freed shard goes straight to w2 — no second
  // request needed.
  fake_.advance_ms(1500);
  step(server);
  const LeaseGrant regrant =
      grant_of(expect_only(fake_.take_client_inbox(w2), "grant"));
  EXPECT_EQ(regrant.shard, 0u);
  EXPECT_TRUE(server.leases().state(0) == LeaseManager::ShardState::kLeased);
  EXPECT_EQ(server.leases().holder(0), "w2");
}

TEST_F(FleetServerTest, DisconnectReleasesLeaseImmediately) {
  TempDir dir("disconnect-release");
  FleetServer server(fake_, spec_, options(1, dir));
  const ConnId w1 = handshake(server, "w1");
  fake_.client_send(w1, fleet_msg::request());
  step(server);
  (void)fake_.take_client_inbox(w1);
  ASSERT_EQ(server.leases().state(0), LeaseManager::ShardState::kLeased);

  // A closed connection is a dead worker: no need to wait out the lease.
  fake_.client_close(w1);
  step(server);
  EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kPending);
}

TEST_F(FleetServerTest, ReconnectUnderSameIdentityKeepsLease) {
  TempDir dir("reconnect-same-id");
  FleetServer server(fake_, spec_, options(1, dir));
  const ConnId old_conn = handshake(server, "w1");
  fake_.client_send(old_conn, fleet_msg::request());
  step(server);
  const LeaseGrant grant =
      grant_of(expect_only(fake_.take_client_inbox(old_conn), "grant"));

  // Same worker id on a fresh connection (its old TCP session wedged):
  // the server retires the old connection but the lease continues.
  const ConnId new_conn = handshake(server, "w1");
  EXPECT_FALSE(fake_.client_open(old_conn));
  EXPECT_EQ(server.leases().holder(0), "w1");

  ProgressRecord record;
  fake_.client_send(new_conn, fleet_msg::heartbeat(0, grant.generation,
                                                   record));
  step(server);
  EXPECT_TRUE(fake_.take_client_inbox(new_conn).empty());  // no refuse
  EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kLeased);
}

TEST_F(FleetServerTest, DuplicateResultIsRefusedDistinctly) {
  TempDir dir("duplicate-result");
  FleetServer server(fake_, spec_, options(2, dir));
  const ConnId w1 = handshake(server, "w1");
  fake_.client_send(w1, fleet_msg::request());
  step(server);
  const LeaseGrant grant =
      grant_of(expect_only(fake_.take_client_inbox(w1), "grant"));

  run_and_submit(server, w1, grant);
  step(server);
  EXPECT_EQ(server.leases().state(grant.shard),
            LeaseManager::ShardState::kDone);

  run_and_submit(server, w1, grant);  // duplicate delivery
  step(server);
  const Json refuse = expect_only(fake_.take_client_inbox(w1), "refuse");
  EXPECT_NE(refuse.find("reason")->as_string().find("already completed"),
            std::string::npos);
}

TEST_F(FleetServerTest, FullCampaignMatchesDirectRunByteForByte) {
  TempDir dir("byte-identity");
  FleetServer server(fake_, spec_, options(3, dir));

  const ConnId w1 = handshake(server, "w1");
  const ConnId w2 = handshake(server, "w2");
  ConnId turn[2] = {w1, w2};
  std::size_t submitted = 0;
  // Two scripted workers alternate until the campaign completes.
  for (int round = 0; round < 16 && !server.finished(); ++round) {
    const ConnId conn = turn[round % 2];
    fake_.client_send(conn, fleet_msg::request());
    step(server);
    const std::vector<Json> inbox = fake_.take_client_inbox(conn);
    ASSERT_EQ(inbox.size(), 1u);
    const std::string type = fleet_msg::type_of(inbox[0]);
    if (type == "done") continue;
    ASSERT_EQ(type, "grant");
    run_and_submit(server, conn, grant_of(inbox[0]));
    step(server);
    ++submitted;
  }
  ASSERT_TRUE(server.finished());
  EXPECT_EQ(submitted, 3u);
  EXPECT_EQ(server.reassignments(), 0u);

  // Fleet results == direct batch results, down to the report bytes.
  scenario::BatchOptions direct_opts;
  direct_opts.threads = 2;
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(server.specs(), direct_opts);
  const std::string direct_json =
      campaign_json(CampaignReport::from(spec_.name, direct));
  const std::string fleet_json =
      campaign_json(CampaignReport::from(spec_.name, server.results()));
  EXPECT_EQ(fleet_json, direct_json);

  // Every shard left a finished progress sidecar behind.
  std::vector<ShardProgress> progress;
  ASSERT_TRUE(scan_progress_dir(dir.path(), progress));
  ASSERT_EQ(progress.size(), 3u);
  for (const ShardProgress& shard : progress) {
    EXPECT_TRUE(shard.parsed);
    EXPECT_TRUE(shard.last.finished);
  }
}

}  // namespace
}  // namespace secbus::campaign
