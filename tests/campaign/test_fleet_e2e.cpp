// Fleet end-to-end over real sockets: a TCP server plus three forked
// worker processes on loopback, one of which chaos-kills itself mid-shard.
// The acceptance bar from the fleet design: the served campaign's merged
// artifacts must be byte-identical to a direct single-process run, killed
// and reassigned workers included.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/chaos.hpp"
#include "campaign/fleet.hpp"
#include "campaign/report.hpp"
#include "net/transport.hpp"
#include "scenario/runner.hpp"
#include "util/csv.hpp"

namespace secbus::campaign {
namespace {

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_fleet_e2e_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

std::string cells_csv_text(const CampaignReport& report,
                           const std::string& scratch) {
  {
    util::CsvWriter csv(scratch);
    write_cells_csv(csv, report);
    csv.flush();
  }
  std::FILE* f = std::fopen(scratch.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

TEST(FleetE2E, ChaosKilledWorkerIsReassignedAndOutputIsByteIdentical) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(
      load_campaign_file(example_path("ci_smoke.json"), spec, &error))
      << error;

  TempDir dir("chaos");
  FleetServerOptions serve_opt;
  serve_opt.shards = 5;
  serve_opt.lease_timeout_ms = 4000;
  serve_opt.heartbeat_ms = 200;
  serve_opt.out_dir = dir.path();
  serve_opt.quiet = true;

  net::TcpServerTransport transport;
  ASSERT_TRUE(transport.listen(0, /*loopback_only=*/true, &error)) << error;
  const std::uint16_t port = transport.bound_port();
  ASSERT_NE(port, 0);
  FleetServer server(transport, spec, serve_opt);

  // Three workers; the second one dies after checkpointing two jobs of its
  // first shard. All share the server's out_dir, so the reassigned shard
  // resumes from the dead worker's checkpoint.
  std::vector<pid_t> workers;
  for (int w = 0; w < 3; ++w) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      FleetWorkerOptions worker_opt;
      worker_opt.host = "127.0.0.1";
      worker_opt.port = port;
      worker_opt.out_dir = dir.path();
      worker_opt.threads = 2;
      worker_opt.worker_id = "e2e-w" + std::to_string(w);
      worker_opt.backoff_ms = 100;
      worker_opt.quiet = true;
      if (w == 1) {
        worker_opt.chaos.kind = ChaosOptions::Kind::kKillAfter;
        worker_opt.chaos.kill_after = 2;
      }
      std::string worker_error;
      const bool ok = run_fleet_worker(worker_opt, nullptr, &worker_error);
      if (!ok) {
        std::fprintf(stderr, "worker %d: %s\n", w, worker_error.c_str());
      }
      ::_exit(ok ? 0 : 1);
    }
    workers.push_back(pid);
  }

  // Drive the server to completion (bounded: a wedged fleet must fail the
  // test, not hang it).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  while (!server.finished() &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(server.step(200, &error)) << error;
  }
  ASSERT_TRUE(server.finished()) << "fleet did not finish in time";
  // Let the final `done` frames flush so live workers exit cleanly.
  for (int i = 0; i < 20; ++i) {
    std::vector<net::TransportEvent> events;
    std::string drain_error;
    if (!transport.poll(50, events, &drain_error)) break;
  }

  int chaos_status = 0;
  ASSERT_EQ(::waitpid(workers[1], &chaos_status, 0), workers[1]);
  ASSERT_TRUE(WIFEXITED(chaos_status));
  EXPECT_EQ(WEXITSTATUS(chaos_status), kChaosExitCode)
      << "the chaos worker should have died by _Exit(kChaosExitCode)";
  for (const int w : {0, 2}) {
    int status = 0;
    ASSERT_EQ(::waitpid(workers[static_cast<std::size_t>(w)], &status, 0),
              workers[static_cast<std::size_t>(w)]);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << w;
  }

  // The kill cost the fleet a lease; reassignment recovered it.
  EXPECT_GE(server.reassignments(), 1u);
  EXPECT_EQ(server.results().size(), server.specs().size());

  // Byte-identity against a direct in-process run of the same grid.
  scenario::BatchOptions direct_opts;
  direct_opts.threads = 4;
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(server.specs(), direct_opts);
  const CampaignReport direct_report = CampaignReport::from(spec.name, direct);
  const CampaignReport fleet_report =
      CampaignReport::from(spec.name, server.results());
  EXPECT_EQ(campaign_json(fleet_report), campaign_json(direct_report));
  EXPECT_EQ(cells_csv_text(fleet_report, dir.file("fleet.cells.csv")),
            cells_csv_text(direct_report, dir.file("direct.cells.csv")));
}

}  // namespace
}  // namespace secbus::campaign

#endif  // __unix__ || __APPLE__
