// Fleet end-to-end over real sockets: a TCP server plus three forked
// worker processes on loopback, one of which chaos-kills itself mid-shard.
// The acceptance bar from the fleet design: the served campaign's merged
// artifacts must be byte-identical to a direct single-process run, killed
// and reassigned workers included — now with the observability plane on
// throughout (HTTP /metrics + /status scraped mid-run, the lease audit
// log reconciling to exactly the fleet's reassignment count, and --metrics
// registries surviving the wire byte-for-byte).
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/audit.hpp"
#include "campaign/chaos.hpp"
#include "campaign/fleet.hpp"
#include "campaign/report.hpp"
#include "net/http.hpp"
#include "net/transport.hpp"
#include "obs/exposition.hpp"
#include "obs/fleet_timeline.hpp"
#include "scenario/runner.hpp"
#include "util/csv.hpp"

namespace secbus::campaign {
namespace {

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_fleet_e2e_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

std::string cells_csv_text(const CampaignReport& report,
                           const std::string& scratch) {
  {
    util::CsvWriter csv(scratch);
    write_cells_csv(csv, report);
    csv.flush();
  }
  std::FILE* f = std::fopen(scratch.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

// Mirrors the metrics sidecar document emit_campaign_outputs writes under
// --metrics, so the fleet-vs-direct comparison locks the exact bytes the
// CLI would put in <campaign>.metrics.json.
std::string metrics_doc(const std::string& name,
                        const std::vector<scenario::JobResult>& results) {
  util::Json doc = util::Json::object();
  doc.set("campaign", util::Json::string(name));
  util::Json jobs = util::Json::array();
  for (const auto& r : results) {
    if (r.metrics.empty()) continue;
    util::Json entry = util::Json::object();
    entry.set("index", util::Json::number(static_cast<std::uint64_t>(r.index)));
    entry.set("metrics", r.metrics.to_json());
    jobs.push(std::move(entry));
  }
  doc.set("jobs", std::move(jobs));
  return doc.dump();
}

// The workers are fork()ed from a gtest process that already runs the
// server thread; ThreadSanitizer refuses to start new threads in a child
// forked from a multi-threaded parent, so under TSan this test cannot run
// at all. The same scenario is covered race-wise by campaign_test_fleet
// (FakeTransport, in-process) and functionally by the CI chaos e2e job.
#if defined(__SANITIZE_THREAD__)
#define SECBUS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SECBUS_TSAN 1
#endif
#endif

TEST(FleetE2E, ChaosKilledWorkerIsReassignedAndOutputIsByteIdentical) {
#ifdef SECBUS_TSAN
  GTEST_SKIP() << "fork()ed multi-threaded workers are unsupported under TSan";
#endif
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(
      load_campaign_file(example_path("ci_smoke.json"), spec, &error))
      << error;

  TempDir dir("chaos");
  FleetServerOptions serve_opt;
  serve_opt.shards = 5;
  serve_opt.lease_timeout_ms = 4000;
  serve_opt.heartbeat_ms = 200;
  serve_opt.out_dir = dir.path();
  serve_opt.quiet = true;
  // The plane under test: lease auditing on, per-job metrics on (the
  // registries must survive the shard files byte-for-byte).
  serve_opt.audit = true;
  serve_opt.grid.collect_metrics = true;

  net::TcpServerTransport transport;
  ASSERT_TRUE(transport.listen(0, /*loopback_only=*/true, &error)) << error;
  const std::uint16_t port = transport.bound_port();
  ASSERT_NE(port, 0);
  FleetServer server(transport, spec, serve_opt);
  ASSERT_FALSE(server.audit_path().empty());

  // The HTTP observability endpoints, serviced from the same thread that
  // drives the fleet — exactly how `campaign serve --http-port` wires it.
  net::HttpServer http;
  ASSERT_TRUE(http.listen(0, /*loopback_only=*/true, &error)) << error;
  const net::HttpServer::Handler handler =
      [&server](const net::HttpRequest& request) {
        net::HttpResponse response;
        if (request.target == "/metrics") {
          response.body = obs::prometheus_text(server.fleet_registry());
        } else if (request.target == "/status") {
          response.content_type = "application/json";
          response.body = server.status_json().dump(0);
        } else {
          response.status = 404;
        }
        return response;
      };
  const auto service_http = [&] {
    std::string http_error;
    http.poll(0, handler, &http_error);
  };

  // A scraper races the fleet from another thread, like a Prometheus
  // poller would; it retries until it lands one good /metrics + /status
  // pair (usually mid-run, but a fast fleet may finish first — the main
  // thread keeps servicing HTTP until the scrape lands either way).
  std::atomic<bool> scraped{false};
  std::string scraped_metrics;
  std::string scraped_status;
  std::thread scraper([&] {
    const auto scrape_deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(2);
    while (std::chrono::steady_clock::now() < scrape_deadline) {
      int status = 0;
      std::string metrics_body, status_body, get_error;
      if (net::http_get("127.0.0.1", http.bound_port(), "/metrics", &status,
                        &metrics_body, &get_error) &&
          status == 200 &&
          net::http_get("127.0.0.1", http.bound_port(), "/status", &status,
                        &status_body, &get_error) &&
          status == 200) {
        scraped_metrics = std::move(metrics_body);
        scraped_status = std::move(status_body);
        scraped.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // Three workers; the second one dies after checkpointing two jobs of its
  // first shard. All share the server's out_dir, so the reassigned shard
  // resumes from the dead worker's checkpoint.
  std::vector<pid_t> workers;
  for (int w = 0; w < 3; ++w) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      FleetWorkerOptions worker_opt;
      worker_opt.host = "127.0.0.1";
      worker_opt.port = port;
      worker_opt.out_dir = dir.path();
      worker_opt.threads = 2;
      worker_opt.worker_id = "e2e-w" + std::to_string(w);
      worker_opt.backoff_ms = 100;
      worker_opt.quiet = true;
      if (w == 1) {
        worker_opt.chaos.kind = ChaosOptions::Kind::kKillAfter;
        worker_opt.chaos.kill_after = 2;
      }
      std::string worker_error;
      const bool ok = run_fleet_worker(worker_opt, nullptr, &worker_error);
      if (!ok) {
        std::fprintf(stderr, "worker %d: %s\n", w, worker_error.c_str());
      }
      ::_exit(ok ? 0 : 1);
    }
    workers.push_back(pid);
  }

  // Drive the server to completion (bounded: a wedged fleet must fail the
  // test, not hang it).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  while (!server.finished() &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(server.step(200, &error)) << error;
    service_http();
  }
  ASSERT_TRUE(server.finished()) << "fleet did not finish in time";
  // Let the final `done` frames flush so live workers exit cleanly, and
  // keep the HTTP plane alive until the scraper lands its pair.
  for (int i = 0; i < 20; ++i) {
    std::vector<net::TransportEvent> events;
    std::string drain_error;
    if (!transport.poll(50, events, &drain_error)) break;
    service_http();
  }
  while (!scraped.load() && std::chrono::steady_clock::now() < deadline) {
    service_http();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  scraper.join();
  http.close();

  int chaos_status = 0;
  ASSERT_EQ(::waitpid(workers[1], &chaos_status, 0), workers[1]);
  ASSERT_TRUE(WIFEXITED(chaos_status));
  EXPECT_EQ(WEXITSTATUS(chaos_status), kChaosExitCode)
      << "the chaos worker should have died by _Exit(kChaosExitCode)";
  for (const int w : {0, 2}) {
    int status = 0;
    ASSERT_EQ(::waitpid(workers[static_cast<std::size_t>(w)], &status, 0),
              workers[static_cast<std::size_t>(w)]);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << w;
  }

  // The kill cost the fleet a lease; reassignment recovered it.
  EXPECT_GE(server.reassignments(), 1u);
  EXPECT_EQ(server.results().size(), server.specs().size());

  // The scrape landed, the exposition carries the fleet identity, and the
  // status document is the campaign the server is actually running.
  ASSERT_TRUE(scraped.load()) << "HTTP scrape never succeeded";
  EXPECT_NE(scraped_metrics.find("# TYPE secbus_fleet_jobs counter\n"),
            std::string::npos);
  EXPECT_NE(scraped_metrics.find("secbus_fleet_shards 5\n"),
            std::string::npos);
  util::Json status_doc;
  ASSERT_TRUE(util::Json::parse(scraped_status, status_doc, &error)) << error;
  EXPECT_EQ(status_doc.find("campaign")->as_string(), spec.name);
  EXPECT_EQ(status_doc.find("leases")->items().size(), 5u);

  // The audit log reconciles exactly: one commit per shard, as many
  // `reassigned` records as the server counted reassignments (>= 1, the
  // chaos kill), and a timeline with nothing unmatched.
  std::vector<AuditRecord> audit_log;
  ASSERT_TRUE(read_audit_log(server.audit_path(), audit_log, &error))
      << error;
  std::size_t commits = 0;
  std::size_t reassignments = 0;
  for (const AuditRecord& record : audit_log) {
    commits += record.event == AuditEvent::kCommit ? 1 : 0;
    reassignments += record.event == AuditEvent::kReassigned ? 1 : 0;
  }
  EXPECT_EQ(commits, serve_opt.shards);
  EXPECT_EQ(reassignments, server.reassignments());
  obs::FleetTimelineStats timeline_stats;
  (void)obs::fleet_timeline_json(audit_log, &timeline_stats);
  EXPECT_EQ(timeline_stats.lease_spans, commits + reassignments);
  EXPECT_EQ(timeline_stats.committed, serve_opt.shards);
  EXPECT_EQ(timeline_stats.unmatched, 0u);

  // Byte-identity against a direct in-process run of the same grid —
  // including the per-job --metrics registries, which crossed the wire
  // inside shard files and must re-emit the identical metrics sidecar.
  scenario::BatchOptions direct_opts;
  direct_opts.threads = 4;
  direct_opts.hooks.collect_metrics = true;
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(server.specs(), direct_opts);
  const CampaignReport direct_report = CampaignReport::from(spec.name, direct);
  const CampaignReport fleet_report =
      CampaignReport::from(spec.name, server.results());
  EXPECT_EQ(campaign_json(fleet_report), campaign_json(direct_report));
  EXPECT_EQ(cells_csv_text(fleet_report, dir.file("fleet.cells.csv")),
            cells_csv_text(direct_report, dir.file("direct.cells.csv")));
  const std::string fleet_metrics = metrics_doc(spec.name, server.results());
  EXPECT_EQ(fleet_metrics, metrics_doc(spec.name, direct));
  EXPECT_NE(fleet_metrics.find("\"metrics\""), std::string::npos)
      << "--metrics registries went missing from the fleet results";
}

}  // namespace
}  // namespace secbus::campaign

#endif  // __unix__ || __APPLE__
