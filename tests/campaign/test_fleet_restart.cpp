// Restart recovery + epoch fencing over FakeTransport: a server killed
// mid-campaign and restarted with `resume` must replay its lease journal
// (committed shards stay done, everything else back to pending), bump its
// epoch, refuse pre-restart zombie results, and still produce merged
// output byte-identical to a single-process run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "campaign/fleet.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/telemetry.hpp"
#include "net/fake_transport.hpp"
#include "scenario/runner.hpp"

namespace secbus::campaign {
namespace {

using net::ConnId;
using net::FakeTransport;
using util::Json;

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_restart_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

class FleetRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(
        load_campaign_file(example_path("ci_smoke.json"), spec_, &error))
        << error;
  }

  FleetServerOptions options(std::size_t shards, const TempDir& dir) {
    FleetServerOptions opt;
    opt.shards = shards;
    opt.lease_timeout_ms = 1000;
    opt.heartbeat_ms = 200;
    opt.out_dir = dir.path();
    opt.quiet = true;
    return opt;
  }

  void step(FakeTransport& fake, FleetServer& server) {
    (void)fake;
    std::string error;
    ASSERT_TRUE(server.step(0, &error)) << error;
  }

  ConnId handshake(FakeTransport& fake, FleetServer& server,
                   const std::string& worker) {
    const ConnId conn = fake.connect_client();
    fake.client_send(conn, fleet_msg::hello(worker));
    step(fake, server);
    (void)fake.take_client_inbox(conn);
    return conn;
  }

  // Expects exactly one message of `type` in the inbox and returns it.
  Json expect_only(const std::vector<Json>& inbox, const std::string& type) {
    EXPECT_EQ(inbox.size(), 1u);
    if (inbox.empty()) return Json();
    EXPECT_EQ(fleet_msg::type_of(inbox[0]), type);
    return inbox[0];
  }

  LeaseGrant grant_of(const Json& msg) {
    LeaseGrant grant;
    std::uint64_t shard = 0;
    EXPECT_TRUE(msg.find("shard")->to_u64(shard));
    EXPECT_TRUE(msg.find("generation")->to_u64(grant.generation));
    if (const Json* epoch = msg.find("epoch"); epoch != nullptr) {
      EXPECT_TRUE(epoch->to_u64(grant.epoch));
    }
    grant.shard = static_cast<std::size_t>(shard);
    return grant;
  }

  LeaseGrant grant_via(FakeTransport& fake, FleetServer& server, ConnId conn) {
    fake.client_send(conn, fleet_msg::request());
    step(fake, server);
    return grant_of(expect_only(fake.take_client_inbox(conn), "grant"));
  }

  // Runs the granted shard for real and submits its result stamped with
  // `epoch` (which may deliberately disagree with the server's).
  void run_and_submit(FakeTransport& fake, FleetServer& server, ConnId conn,
                      const LeaseGrant& grant, std::uint64_t epoch) {
    ShardRunOptions run;
    run.shard = grant.shard;
    run.shards = server.leases().shard_count();
    run.threads = 2;
    const ShardRunOutcome outcome = run_shard(server.specs(), run);
    const ShardResultFile file =
        to_shard_file(spec_.name, outcome, grant.shard,
                      server.leases().shard_count(), server.grid_fp());
    ProgressSampler sampler;
    sampler.begin(spec_.name, grant.shard, server.leases().shard_count());
    const ProgressRecord record = sampler.sample(
        outcome.indices.size(), outcome.indices.size(), /*finished=*/true);
    fake.client_send(conn, fleet_msg::shard_done(grant.shard, grant.generation,
                                                 record, file, epoch));
    step(fake, server);
  }

  CampaignSpec spec_;
};

TEST_F(FleetRestartTest, ResumeRestoresCommitsFencesZombiesAndStaysByteIdentical) {
  TempDir dir("resume");

  // --- incarnation 0: commit shard 0, grant shard 1, then "crash" --------
  FakeTransport fake1;
  LeaseGrant stale;  // shard 1's grant, minted under epoch 0
  {
    FleetServer server(fake1, spec_, options(2, dir));
    ASSERT_TRUE(server.init_error().empty()) << server.init_error();
    EXPECT_EQ(server.epoch(), 0u);
    ASSERT_FALSE(server.journal_path().empty());

    const ConnId w1 = handshake(fake1, server, "w1");
    const LeaseGrant g0 = grant_via(fake1, server, w1);
    ASSERT_EQ(g0.shard, 0u);
    EXPECT_EQ(g0.epoch, 0u);
    run_and_submit(fake1, server, w1, g0, g0.epoch);
    ASSERT_EQ(server.leases().state(0), LeaseManager::ShardState::kDone);

    stale = grant_via(fake1, server, w1);
    ASSERT_EQ(stale.shard, 1u);
    // Destroying the server here *is* the crash: the journal has shard 0's
    // commit but no trace of shard 1 completing.
  }

  // --- a fresh serve over the crashed journal must refuse ----------------
  {
    FakeTransport fresh_fake;
    FleetServer fresh(fresh_fake, spec_, options(2, dir));
    EXPECT_NE(fresh.init_error().find("--resume"), std::string::npos)
        << fresh.init_error();
    std::string error;
    EXPECT_FALSE(fresh.step(0, &error));
    EXPECT_EQ(error, fresh.init_error());
  }

  // --- incarnation 1: resume -------------------------------------------
  FakeTransport fake2;
  FleetServerOptions resume_opt = options(2, dir);
  resume_opt.resume = true;
  FleetServer server(fake2, spec_, resume_opt);
  ASSERT_TRUE(server.init_error().empty()) << server.init_error();
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_EQ(server.resumed_shards(), 1u);
  EXPECT_EQ(server.leases().state(0), LeaseManager::ShardState::kDone);
  EXPECT_EQ(server.leases().state(1), LeaseManager::ShardState::kPending);

  // The zombie reconnects still holding its epoch-0 lease on shard 1. Its
  // heartbeat and its completed result both present the stale epoch and
  // are fenced off with drop=true; the shard stays pending.
  const ConnId zombie = handshake(fake2, server, "w1");
  ProgressRecord running;
  running.campaign = spec_.name;
  running.total = 10;
  fake2.client_send(zombie, fleet_msg::heartbeat(stale.shard, stale.generation,
                                                 running, nullptr,
                                                 /*epoch=*/0));
  step(fake2, server);
  Json refuse = expect_only(fake2.take_client_inbox(zombie), "refuse");
  EXPECT_TRUE(refuse.find("drop")->as_bool());
  run_and_submit(fake2, server, zombie, stale, /*epoch=*/0);
  refuse = expect_only(fake2.take_client_inbox(zombie), "refuse");
  EXPECT_TRUE(refuse.find("drop")->as_bool());
  EXPECT_EQ(server.leases().state(1), LeaseManager::ShardState::kPending);

  // Re-requesting yields a fresh epoch-1 grant, and the result minted
  // under it is accepted — finishing the campaign.
  const LeaseGrant regrant = grant_via(fake2, server, zombie);
  EXPECT_EQ(regrant.shard, 1u);
  EXPECT_EQ(regrant.epoch, 1u);
  EXPECT_EQ(regrant.generation, 1u);  // fresh lease manager, first grant
  run_and_submit(fake2, server, zombie, regrant, regrant.epoch);
  ASSERT_TRUE(server.finished());
  EXPECT_EQ(server.results().size(), server.specs().size());

  // Byte-identity across the crash: the merged fleet report equals the
  // direct single-process run's, despite shard 0 predating the restart.
  scenario::BatchOptions direct_opts;
  direct_opts.threads = 2;
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(server.specs(), direct_opts);
  EXPECT_EQ(campaign_json(CampaignReport::from(spec_.name, server.results())),
            campaign_json(CampaignReport::from(spec_.name, direct)));

  // The completed journal is swept by the next fresh serve, which then
  // starts at epoch 0 with a clean slate.
  {
    FakeTransport fake3;
    FleetServer next(fake3, spec_, options(2, dir));
    EXPECT_TRUE(next.init_error().empty()) << next.init_error();
    EXPECT_EQ(next.epoch(), 0u);
    EXPECT_EQ(next.resumed_shards(), 0u);
  }
}

TEST_F(FleetRestartTest, ResumeWithoutJournalIsAnError) {
  TempDir dir("no-journal");
  FakeTransport fake;
  FleetServerOptions opt = options(2, dir);
  opt.resume = true;
  FleetServer server(fake, spec_, opt);
  EXPECT_FALSE(server.init_error().empty());
  std::string error;
  EXPECT_FALSE(server.step(0, &error));
}

TEST_F(FleetRestartTest, ResumeRefusesIdentityMismatch) {
  TempDir dir("identity");
  // A journal for the same campaign name but a different shard count must
  // not resume — the committed shard files would not line up.
  {
    FleetJournal journal;
    const std::string path =
        dir.path() + "/" + journal_file_name(spec_.name);
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.append_epoch(0, spec_.name, 5, 3, 0x1234u));
  }
  FakeTransport fake;
  FleetServerOptions opt = options(2, dir);
  opt.resume = true;
  FleetServer server(fake, spec_, opt);
  EXPECT_FALSE(server.init_error().empty());
  EXPECT_NE(server.init_error().find("journal"), std::string::npos)
      << server.init_error();
}

TEST_F(FleetRestartTest, JournalOffPreservesLegacyBehavior) {
  TempDir dir("off");
  FakeTransport fake;
  FleetServerOptions opt = options(1, dir);
  opt.journal = false;
  FleetServer server(fake, spec_, opt);
  EXPECT_TRUE(server.init_error().empty());
  EXPECT_TRUE(server.journal_path().empty());
  const ConnId w1 = handshake(fake, server, "w1");
  const LeaseGrant grant = grant_via(fake, server, w1);
  run_and_submit(fake, server, w1, grant, grant.epoch);
  ASSERT_TRUE(server.finished());
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/" +
                                       journal_file_name(spec_.name)));
}

}  // namespace
}  // namespace secbus::campaign
