// Crash-safe lease journal: record round-trips, identity validation, and
// the torn-tail sweep — the journal must replay correctly from a prefix
// truncated at *every* byte offset, because a SIGKILL can land anywhere.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "util/fileio.hpp"

namespace secbus::campaign {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_journal_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

void write_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(FleetJournal, FileNameConvention) {
  EXPECT_EQ(journal_file_name("ci_smoke"), "ci_smoke.fleet-journal.jsonl");
}

TEST(FleetJournal, EpochAndCommitsRoundTrip) {
  TempDir dir("roundtrip");
  const std::string path = dir.file("j.jsonl");
  FleetJournal journal;
  ASSERT_TRUE(journal.open(path));
  ASSERT_TRUE(journal.append_epoch(0, "camp", 3, 12, 0xfeedu));
  ASSERT_TRUE(journal.append_commit(0, 1, 2, "w1", "/tmp/shard1"));
  ASSERT_TRUE(journal.append_commit(0, 0, 1, "w2", "/tmp/shard0"));

  FleetJournalState state;
  std::string error;
  ASSERT_TRUE(read_fleet_journal(path, state, &error)) << error;
  EXPECT_TRUE(state.any_epoch);
  EXPECT_EQ(state.last_epoch, 0u);
  EXPECT_EQ(state.campaign, "camp");
  EXPECT_EQ(state.shards, 3u);
  EXPECT_EQ(state.jobs, 12u);
  EXPECT_EQ(state.grid_fp, 0xfeedu);
  ASSERT_EQ(state.committed.size(), 2u);
  EXPECT_EQ(state.committed.at(1).generation, 2u);
  EXPECT_EQ(state.committed.at(1).worker, "w1");
  EXPECT_EQ(state.committed.at(0).file, "/tmp/shard0");
  EXPECT_FALSE(state.complete());  // 2 of 3 shards committed

  ASSERT_TRUE(journal.append_commit(0, 2, 1, "w1", "/tmp/shard2"));
  ASSERT_TRUE(read_fleet_journal(path, state, &error)) << error;
  EXPECT_TRUE(state.complete());
}

TEST(FleetJournal, AppendsAcrossRestartsAndTracksLastEpoch) {
  TempDir dir("restart");
  const std::string path = dir.file("j.jsonl");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.append_epoch(0, "camp", 2, 4, 7));
    ASSERT_TRUE(journal.append_commit(0, 0, 1, "w1", "/tmp/s0"));
  }
  {
    // The restarted server opens the same file and appends its epoch.
    FleetJournal journal;
    ASSERT_TRUE(journal.open(path));
    ASSERT_TRUE(journal.append_epoch(1, "camp", 2, 4, 7));
    ASSERT_TRUE(journal.append_commit(1, 1, 1, "w2", "/tmp/s1"));
  }
  FleetJournalState state;
  std::string error;
  ASSERT_TRUE(read_fleet_journal(path, state, &error)) << error;
  EXPECT_EQ(state.last_epoch, 1u);
  ASSERT_EQ(state.committed.size(), 2u);
  EXPECT_EQ(state.committed.at(0).epoch, 0u);
  EXPECT_EQ(state.committed.at(1).epoch, 1u);
  EXPECT_TRUE(state.complete());
}

TEST(FleetJournal, RefusesMixedCampaigns) {
  TempDir dir("mixed");
  const std::string path = dir.file("j.jsonl");
  FleetJournal journal;
  ASSERT_TRUE(journal.open(path));
  ASSERT_TRUE(journal.append_epoch(0, "camp_a", 2, 4, 7));
  ASSERT_TRUE(journal.append_epoch(1, "camp_b", 2, 4, 7));
  FleetJournalState state;
  std::string error;
  EXPECT_FALSE(read_fleet_journal(path, state, &error));
  EXPECT_NE(error.find("mixes different campaigns"), std::string::npos);
}

TEST(FleetJournal, RefusesEpochGoingBackwards) {
  TempDir dir("backwards");
  const std::string path = dir.file("j.jsonl");
  FleetJournal journal;
  ASSERT_TRUE(journal.open(path));
  ASSERT_TRUE(journal.append_epoch(3, "camp", 2, 4, 7));
  ASSERT_TRUE(journal.append_epoch(2, "camp", 2, 4, 7));
  FleetJournalState state;
  std::string error;
  EXPECT_FALSE(read_fleet_journal(path, state, &error));
  EXPECT_NE(error.find("backwards"), std::string::npos);
}

TEST(FleetJournal, RefusesCommitForOutOfRangeShard) {
  TempDir dir("range");
  const std::string path = dir.file("j.jsonl");
  FleetJournal journal;
  ASSERT_TRUE(journal.open(path));
  ASSERT_TRUE(journal.append_epoch(0, "camp", 2, 4, 7));
  ASSERT_TRUE(journal.append_commit(0, 5, 1, "w1", "/tmp/s5"));
  FleetJournalState state;
  std::string error;
  EXPECT_FALSE(read_fleet_journal(path, state, &error));
  EXPECT_NE(error.find("shard 5"), std::string::npos);
}

TEST(FleetJournal, MissingFileFailsToRead) {
  TempDir dir("missing");
  FleetJournalState state;
  std::string error;
  EXPECT_FALSE(read_fleet_journal(dir.file("nope.jsonl"), state, &error));
  EXPECT_FALSE(error.empty());
}

// The crash-safety property itself: for EVERY byte-length prefix of a
// valid journal, replay succeeds and recovers exactly the records whose
// complete lines fit inside the prefix — no error, no phantom records,
// nothing lost before the tear.
TEST(FleetJournal, TornTailReplaysAtEveryByteOffset) {
  TempDir dir("torn");
  const std::string full_path = dir.file("full.jsonl");
  {
    FleetJournal journal;
    ASSERT_TRUE(journal.open(full_path));
    ASSERT_TRUE(journal.append_epoch(0, "camp", 3, 9, 0xabcdu));
    ASSERT_TRUE(journal.append_commit(0, 0, 1, "w1", "/tmp/s0"));
    ASSERT_TRUE(journal.append_commit(0, 2, 1, "w2", "/tmp/s2"));
    ASSERT_TRUE(journal.append_epoch(1, "camp", 3, 9, 0xabcdu));
    ASSERT_TRUE(journal.append_commit(1, 1, 1, "w1", "/tmp/s1"));
  }
  std::string text;
  std::string error;
  ASSERT_TRUE(util::read_file(full_path, text, &error)) << error;
  ASSERT_EQ(text.back(), '\n');

  // Per-line expectations, in file order: each entry is the state the
  // replay must reach once that line is complete.
  struct Expect {
    bool any_epoch;
    std::uint64_t last_epoch;
    std::size_t commits;
  };
  const std::vector<Expect> after_line = {
      {true, 0, 0}, {true, 0, 1}, {true, 0, 2}, {true, 1, 2}, {true, 1, 3},
  };

  const std::string torn_path = dir.file("torn.jsonl");
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const std::string prefix = text.substr(0, cut);
    write_bytes(torn_path, prefix);
    // A record is recovered once its full JSON text is present — the
    // trailing newline is not required (a crash can land between the
    // record bytes and the '\n'; the record is still whole). So a cut
    // sitting exactly on a newline recovers that line too.
    std::size_t complete_lines = static_cast<std::size_t>(
        std::count(prefix.begin(), prefix.end(), '\n'));
    if (cut < text.size() && text[cut] == '\n') ++complete_lines;
    FleetJournalState state;
    error.clear();
    ASSERT_TRUE(read_fleet_journal(torn_path, state, &error))
        << "cut at byte " << cut << ": " << error;
    if (complete_lines == 0) {
      EXPECT_FALSE(state.any_epoch) << "cut at byte " << cut;
      EXPECT_TRUE(state.committed.empty()) << "cut at byte " << cut;
      continue;
    }
    const Expect& want = after_line[complete_lines - 1];
    EXPECT_EQ(state.any_epoch, want.any_epoch) << "cut at byte " << cut;
    EXPECT_EQ(state.last_epoch, want.last_epoch) << "cut at byte " << cut;
    EXPECT_EQ(state.committed.size(), want.commits) << "cut at byte " << cut;
  }
}

}  // namespace
}  // namespace secbus::campaign
