// Campaign report: cell grouping, rate math, the undetected-runs-excluded
// rule for detection-latency percentiles, weakest-cell ranking, and the
// empty-cell convention in the CSV.
#include "campaign/report.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace secbus::campaign {
namespace {

scenario::JobResult job(const std::string& variant, std::uint64_t seed,
                        const char* attack, bool attack_ran, bool detected,
                        sim::Cycle latency) {
  scenario::JobResult r;
  r.name = "camp";
  r.variant = variant + ",seed=" + std::to_string(seed);
  r.seed = seed;
  r.attack = attack;
  r.attack_ran = attack_ran;
  r.detected = detected;
  if (detected) r.detection_latency = latency;
  r.soc.completed = true;
  r.soc.avg_access_latency = 50.0;
  return r;
}

TEST(CampaignReport, GroupsSeedRepeatsIntoCells) {
  std::vector<scenario::JobResult> jobs;
  jobs.push_back(job("attack=hijack,protection=plaintext", 1, "hijack",
                     true, true, 60));
  jobs.push_back(job("attack=hijack,protection=plaintext", 2, "hijack",
                     true, false, 0));
  jobs.push_back(job("attack=hijack,protection=cipher-only", 1, "hijack",
                     true, true, 70));
  const CampaignReport report = CampaignReport::from("camp", jobs);
  ASSERT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.cells[0].key, "attack=hijack,protection=plaintext");
  EXPECT_EQ(report.cells[0].jobs, 2u);
  EXPECT_EQ(report.cells[1].jobs, 1u);
  EXPECT_DOUBLE_EQ(report.cells[0].detection_rate(), 0.5);
  EXPECT_DOUBLE_EQ(report.cells[1].detection_rate(), 1.0);
}

TEST(CampaignReport, UndetectedRunsAreExcludedFromLatencyPercentiles) {
  std::vector<scenario::JobResult> jobs;
  // 3 detected at 100 cycles, 2 undetected. If the undetected runs leaked
  // into the histogram as zeros, p50 would read 0.
  for (std::uint64_t s = 0; s < 3; ++s) {
    jobs.push_back(job("attack=spoof", s, "external-spoof", true, true, 100));
  }
  for (std::uint64_t s = 3; s < 5; ++s) {
    jobs.push_back(job("attack=spoof", s, "external-spoof", true, false, 0));
  }
  const CampaignReport report = CampaignReport::from("camp", jobs);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellAggregate& cell = report.cells[0];
  EXPECT_EQ(cell.detection_hist.count(), 3u);
  EXPECT_EQ(cell.detection_hist.p50(), 100u);
  EXPECT_EQ(cell.detection_hist.p99(), 100u);
  EXPECT_DOUBLE_EQ(cell.detection_rate(), 0.6);
  // Batch-level roll-up follows the same rule.
  EXPECT_EQ(report.batch.detection_hist.count(), 3u);
}

TEST(CampaignReport, WeakestRankingPutsUndetectedDamageFirst) {
  std::vector<scenario::JobResult> jobs;
  // Cell A: benign (no attack) — never ranked.
  jobs.push_back(job("security=none", 1, "none", false, false, 0));
  // Cell B: detected everything, fast.
  jobs.push_back(job("attack=hijack", 1, "hijack", true, true, 50));
  // Cell C: detected nothing and the victim was corrupted.
  auto corrupted = job("attack=spoof", 1, "external-spoof", true, false, 0);
  corrupted.victim_checked = true;
  corrupted.victim_data_intact = false;
  jobs.push_back(corrupted);
  // Cell D: detected nothing but no victim check either.
  jobs.push_back(job("attack=flood", 1, "flood-in-policy", true, false, 0));

  const CampaignReport report = CampaignReport::from("camp", jobs);
  ASSERT_EQ(report.cells.size(), 4u);
  const std::vector<std::size_t> ranked = report.ranked_weakest();
  ASSERT_EQ(ranked.size(), 3u);  // benign cell excluded
  // Undetected + damaged ranks weaker than undetected alone; full detection
  // ranks last.
  EXPECT_EQ(report.cells[ranked[0]].key, "attack=spoof");
  EXPECT_EQ(report.cells[ranked[1]].key, "attack=flood");
  EXPECT_EQ(report.cells[ranked[2]].key, "attack=hijack");
}

TEST(CampaignReport, CsvEmitsEmptyCellsForUndefinedOutcomes) {
  std::vector<scenario::JobResult> jobs;
  jobs.push_back(job("security=none", 1, "none", false, false, 0));
  auto detected = job("attack=hijack", 1, "hijack", true, true, 60);
  detected.containment_checked = true;
  detected.contained = true;
  jobs.push_back(detected);
  jobs.push_back(job("attack=spoof", 1, "external-spoof", true, false, 0));

  const CampaignReport report = CampaignReport::from("camp", jobs);
  util::CsvWriter csv;  // in-memory
  write_cells_csv(csv, report);
  std::vector<std::string> lines;
  std::string buffer = csv.buffer();
  std::size_t start = 0;
  while (start < buffer.size()) {
    const std::size_t nl = buffer.find('\n', start);
    lines.push_back(buffer.substr(start, nl - start));
    start = nl == std::string::npos ? buffer.size() : nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 cells

  // Benign cell: detected/detection_rate/contained/... all empty.
  EXPECT_NE(lines[1].find(",,,,"), std::string::npos) << lines[1];
  // Detected hijack: rate 1 and latency percentiles present.
  EXPECT_NE(lines[2].find(",1,1,"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("60"), std::string::npos) << lines[2];
  // Undetected spoof: rate 0 but *empty* latency percentiles (not zeros).
  EXPECT_NE(lines[3].find(",0,0,"), std::string::npos) << lines[3];
  EXPECT_NE(lines[3].find(",,,,"), std::string::npos) << lines[3];
}

TEST(CampaignReport, JsonEmitsNullsAndWeakestList) {
  std::vector<scenario::JobResult> jobs;
  jobs.push_back(job("attack=spoof", 1, "external-spoof", true, false, 0));
  jobs.push_back(job("attack=hijack", 1, "hijack", true, true, 42));
  const CampaignReport report = CampaignReport::from("camp", jobs);

  util::Json j;
  std::string error;
  ASSERT_TRUE(util::Json::parse(campaign_json(report), j, &error)) << error;
  ASSERT_NE(j.find("cells"), nullptr);
  ASSERT_EQ(j.find("cells")->items().size(), 2u);

  const util::Json& spoof = j.find("cells")->items()[0];
  EXPECT_TRUE(spoof.find("detection_latency")->is_null());
  EXPECT_DOUBLE_EQ(spoof.find("detection_rate")->as_double(), 0.0);
  const util::Json& hijack = j.find("cells")->items()[1];
  ASSERT_TRUE(hijack.find("detection_latency")->is_object());
  std::uint64_t p50 = 0;
  ASSERT_TRUE(hijack.find("detection_latency")->find("p50")->to_u64(p50));
  EXPECT_EQ(p50, 42u);

  ASSERT_NE(j.find("weakest"), nullptr);
  ASSERT_EQ(j.find("weakest")->items().size(), 2u);
  EXPECT_EQ(j.find("weakest")->items()[0].as_string(), "attack=spoof");
}

}  // namespace
}  // namespace secbus::campaign
