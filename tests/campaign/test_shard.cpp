// Shard determinism + checkpoint resume: the tentpole guarantees.
//
// For every example campaign, the merged union of N shard runs — executed
// through the real shard files on disk — must be byte-identical (cells CSV
// + campaign JSON) to the unsharded run, for N in {2, 4, 7}; and an
// interrupted shard must resume from its checkpoint without re-running or
// duplicating jobs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "campaign/shard.hpp"
#include "scenario/runner.hpp"
#include "util/csv.hpp"
#include "util/jsonl.hpp"

namespace secbus::campaign {
namespace {

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

std::vector<scenario::ScenarioSpec> load_and_expand(const std::string& file) {
  CampaignSpec spec;
  std::string error;
  EXPECT_TRUE(load_campaign_file(file, spec, &error)) << error;
  return expand_campaign(spec);
}

std::string campaign_name_of(const std::string& file) {
  CampaignSpec spec;
  std::string error;
  EXPECT_TRUE(load_campaign_file(file, spec, &error)) << error;
  return spec.name;
}

// Cells CSV rendered to a string (CsvWriter wants a path; go through tmp).
std::string cells_csv_text(const CampaignReport& report) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("secbus_cells_" + std::to_string(::getpid()) + "_" + report.name +
        ".csv"))
          .string();
  {
    util::CsvWriter csv(path);
    write_cells_csv(csv, report);
    csv.flush();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  return text;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_shard_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

unsigned pool_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void expect_sharded_equals_unsharded(const std::string& campaign_file,
                                     std::size_t shards) {
  const std::vector<scenario::ScenarioSpec> specs =
      load_and_expand(campaign_file);
  const std::string name = campaign_name_of(campaign_file);

  scenario::BatchOptions direct_opts;
  direct_opts.threads = pool_threads();
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(specs, direct_opts);
  const CampaignReport direct_report = CampaignReport::from(name, direct);
  const std::string direct_json = campaign_json(direct_report);
  const std::string direct_cells = cells_csv_text(direct_report);

  // Run every shard independently, persist through real shard files, merge.
  TempDir dir(name + "-" + std::to_string(shards));
  const std::uint64_t grid_fp = grid_fingerprint(specs);
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardRunOptions run;
    run.shard = s;
    run.shards = shards;
    run.threads = pool_threads();
    const ShardRunOutcome outcome = run_shard(specs, run);
    const std::string path = dir.file(shard_file_name(name, s, shards));
    std::string error;
    ASSERT_TRUE(write_shard_file(
        path, to_shard_file(name, outcome, s, shards, grid_fp), &error))
        << error;
    paths.push_back(path);
  }

  std::string merged_name;
  std::vector<scenario::JobResult> merged;
  std::string error;
  ASSERT_TRUE(merge_shard_files(paths, &merged_name, &merged, &error))
      << error;
  EXPECT_EQ(merged_name, name);
  ASSERT_EQ(merged.size(), direct.size());

  const CampaignReport merged_report = CampaignReport::from(name, merged);
  EXPECT_EQ(campaign_json(merged_report), direct_json)
      << campaign_file << " with " << shards << " shards";
  EXPECT_EQ(cells_csv_text(merged_report), direct_cells)
      << campaign_file << " with " << shards << " shards";
}

TEST(ShardDeterminism, CiSmokeMergesByteIdentical) {
  for (const std::size_t shards : {2, 4, 7}) {
    expect_sharded_equals_unsharded(example_path("ci_smoke.json"), shards);
  }
}

TEST(ShardDeterminism, AttackGridMergesByteIdentical) {
  for (const std::size_t shards : {2, 4, 7}) {
    expect_sharded_equals_unsharded(example_path("attack_grid.json"), shards);
  }
}

TEST(ShardDeterminism, PlacementMeshMergesByteIdentical) {
  for (const std::size_t shards : {2, 4, 7}) {
    expect_sharded_equals_unsharded(example_path("placement_mesh.json"),
                                    shards);
  }
}

TEST(ShardPlan, RoundRobinCoversEveryJobExactlyOnce) {
  const std::size_t jobs = 23;
  const std::size_t shards = 4;
  std::vector<int> seen(jobs, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (const std::size_t i : shard_indices(jobs, s, shards)) {
      ASSERT_LT(i, jobs);
      EXPECT_EQ(shard_of(i, shards), s);
      ++seen[i];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(ShardPlan, FingerprintsSeeEveryFieldOfTheSpec) {
  const std::vector<scenario::ScenarioSpec> specs =
      load_and_expand(example_path("ci_smoke.json"));
  scenario::ScenarioSpec tweaked = specs[0];
  tweaked.max_cycles += 1;
  EXPECT_NE(spec_fingerprint(specs[0]), spec_fingerprint(tweaked));
  scenario::ScenarioSpec tweaked_seed = specs[0];
  tweaked_seed.soc.seed ^= 1;
  EXPECT_NE(spec_fingerprint(specs[0]), spec_fingerprint(tweaked_seed));
  EXPECT_EQ(spec_fingerprint(specs[0]), spec_fingerprint(specs[0]));
}

TEST(ShardMerge, RejectsIncompleteAndForeignShardSets) {
  const std::vector<scenario::ScenarioSpec> specs =
      load_and_expand(example_path("ci_smoke.json"));
  const std::string name = campaign_name_of(example_path("ci_smoke.json"));
  TempDir dir("merge-guards");
  const std::uint64_t grid_fp = grid_fingerprint(specs);

  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    ShardRunOptions run;
    run.shard = s;
    run.shards = 2;
    run.threads = pool_threads();
    const ShardRunOutcome outcome = run_shard(specs, run);
    const std::string path = dir.file(shard_file_name(name, s, 2));
    std::string error;
    ASSERT_TRUE(write_shard_file(
        path, to_shard_file(name, outcome, s, 2, grid_fp), &error))
        << error;
    paths.push_back(path);
  }

  std::string error;
  // Missing shard 1: must refuse, not emit a partial campaign.
  EXPECT_FALSE(merge_shard_files({paths[0]}, nullptr, nullptr, &error));
  // Duplicate shard 0: must refuse.
  error.clear();
  EXPECT_FALSE(
      merge_shard_files({paths[0], paths[0]}, nullptr, nullptr, &error));
  // A shard whose grid fingerprint disagrees: must refuse.
  ShardRunOptions run;
  run.shard = 1;
  run.shards = 2;
  run.threads = pool_threads();
  const ShardRunOutcome outcome = run_shard(specs, run);
  const std::string foreign = dir.file("foreign.json");
  error.clear();
  ASSERT_TRUE(write_shard_file(
      foreign, to_shard_file(name, outcome, 1, 2, grid_fp ^ 1), &error))
      << error;
  error.clear();
  EXPECT_FALSE(
      merge_shard_files({paths[0], foreign}, nullptr, nullptr, &error));
  EXPECT_NE(error.find("disagrees"), std::string::npos);

  // The intact pair still merges.
  error.clear();
  EXPECT_TRUE(merge_shard_files(paths, nullptr, nullptr, &error)) << error;
}

TEST(ShardMerge, MoreShardsThanJobsStillMergesCleanly) {
  // 30-job campaign sliced 33 ways: the last shards own no jobs but must
  // still stamp their own index (regression: empty slices once claimed
  // shard 0, tripping the duplicate-shard guard on merge).
  const std::string file = example_path("placement_mesh.json");
  const std::vector<scenario::ScenarioSpec> specs = load_and_expand(file);
  const std::string name = campaign_name_of(file);
  const std::size_t shards = specs.size() + 3;
  TempDir dir("empty-slices");
  const std::uint64_t grid_fp = grid_fingerprint(specs);

  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardRunOptions run;
    run.shard = s;
    run.shards = shards;
    run.threads = pool_threads();
    const ShardRunOutcome outcome = run_shard(specs, run);
    if (s >= specs.size()) EXPECT_TRUE(outcome.indices.empty());
    const std::string path = dir.file(shard_file_name(name, s, shards));
    std::string error;
    ASSERT_TRUE(write_shard_file(
        path, to_shard_file(name, outcome, s, shards, grid_fp), &error))
        << error;
    paths.push_back(path);
  }
  std::string merged_name;
  std::vector<scenario::JobResult> merged;
  std::string error;
  ASSERT_TRUE(merge_shard_files(paths, &merged_name, &merged, &error))
      << error;
  EXPECT_EQ(merged.size(), specs.size());
}

TEST(Checkpoint, ResumeSkipsCompletedJobsWithoutDuplication) {
  const std::vector<scenario::ScenarioSpec> specs =
      load_and_expand(example_path("ci_smoke.json"));
  TempDir dir("checkpoint");
  const std::string ckpt = dir.file("shard0.ckpt.jsonl");

  // Phase 1: "crash" after the first 10 jobs of shard 0/2 — simulated by
  // running only a prefix of the shard slice with checkpointing on.
  const std::vector<std::size_t> slice = shard_indices(specs.size(), 0, 2);
  ASSERT_GT(slice.size(), 10u);
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.open(ckpt));
    scenario::BatchOptions opts;
    opts.threads = pool_threads();
    opts.indices =
        std::vector<std::size_t>(slice.begin(), slice.begin() + 10);
    // No gtest assertions inside the callback: it runs on worker threads.
    opts.on_job_done = [&](const scenario::JobResult& r, std::size_t,
                           std::size_t) {
      (void)writer.append(r, spec_fingerprint(specs[r.index]));
    };
    (void)scenario::run_batch(specs, opts);
    ASSERT_TRUE(writer.ok());
  }

  // Phase 2: resume the full shard against the same checkpoint. Completion
  // callbacks run concurrently (the runner no longer serializes them), so
  // the counter is atomic.
  std::atomic<std::size_t> executed_jobs{0};
  ShardRunOptions run;
  run.shard = 0;
  run.shards = 2;
  run.threads = pool_threads();
  run.checkpoint_path = ckpt;
  run.on_job_done = [&](const scenario::JobResult&, std::size_t,
                        std::size_t) { ++executed_jobs; };
  const ShardRunOutcome outcome = run_shard(specs, run);
  EXPECT_EQ(outcome.resumed, 10u);
  EXPECT_EQ(outcome.executed, slice.size() - 10);
  EXPECT_EQ(executed_jobs, slice.size() - 10);  // resumed jobs never re-ran

  // The checkpoint holds each shard job exactly once (resume appended only
  // the remainder), and a third run resumes everything.
  std::vector<util::Json> records;
  ASSERT_TRUE(util::read_jsonl(ckpt, records));
  EXPECT_EQ(records.size(), slice.size());
  const ShardRunOutcome replay = run_shard(specs, run);
  EXPECT_EQ(replay.resumed, slice.size());
  EXPECT_EQ(replay.executed, 0u);

  // Resumed results equal directly-computed results bit-for-bit (probe the
  // campaign JSON, which folds every field the reports use).
  scenario::BatchOptions direct_opts;
  direct_opts.threads = pool_threads();
  direct_opts.indices = slice;
  const std::vector<scenario::JobResult> direct =
      scenario::run_batch(specs, direct_opts);
  std::vector<scenario::JobResult> direct_slice;
  std::vector<scenario::JobResult> resumed_slice;
  for (const std::size_t i : slice) {
    direct_slice.push_back(direct[i]);
    resumed_slice.push_back(replay.results[i]);
  }
  EXPECT_EQ(campaign_json(CampaignReport::from("ck", direct_slice)),
            campaign_json(CampaignReport::from("ck", resumed_slice)));
}

TEST(Checkpoint, StaleFingerprintsAreIgnored) {
  const std::vector<scenario::ScenarioSpec> specs =
      load_and_expand(example_path("ci_smoke.json"));
  TempDir dir("stale");
  const std::string ckpt = dir.file("stale.ckpt.jsonl");

  // Checkpoint one job, then "edit the campaign": bump every cycle cap.
  {
    CheckpointWriter writer;
    ASSERT_TRUE(writer.open(ckpt));
    scenario::BatchOptions opts;
    opts.indices = std::vector<std::size_t>{0};
    opts.on_job_done = [&](const scenario::JobResult& r, std::size_t,
                           std::size_t) {
      (void)writer.append(r, spec_fingerprint(specs[r.index]));
    };
    (void)scenario::run_batch(specs, opts);
    ASSERT_TRUE(writer.ok());
  }
  std::vector<scenario::ScenarioSpec> edited = specs;
  for (scenario::ScenarioSpec& spec : edited) spec.max_cycles += 1;

  std::vector<scenario::JobResult> results(edited.size());
  std::vector<char> done(edited.size(), 0);
  EXPECT_EQ(load_checkpoint(ckpt, edited, results, done), 0u);
  // Unedited specs still restore.
  std::vector<scenario::JobResult> results2(specs.size());
  std::vector<char> done2(specs.size(), 0);
  EXPECT_EQ(load_checkpoint(ckpt, specs, results2, done2), 1u);
}

}  // namespace
}  // namespace secbus::campaign
