// Spec <-> JSON round trips: enum string pairs, every builtin scenario
// surviving export/import field-for-field, and — for the fast builtins —
// bit-identical SocResults when the reimported spec actually runs.
#include "campaign/spec_io.hpp"

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "scenario/registry.hpp"

namespace secbus::campaign {
namespace {

using scenario::AttackKind;
using soc::ProtectionLevel;
using soc::SecurityMode;
using soc::TopologySpec;

TEST(EnumRoundTrip, AttackKinds) {
  for (const AttackKind kind :
       {AttackKind::kNone, AttackKind::kHijack, AttackKind::kExternalSpoof,
        AttackKind::kExternalReplay, AttackKind::kExternalRelocation,
        AttackKind::kExternalCorruption, AttackKind::kFloodInPolicy,
        AttackKind::kFloodOutOfPolicy, AttackKind::kFloodThrottled}) {
    AttackKind parsed;
    ASSERT_TRUE(scenario::parse_attack_kind(to_string(kind), parsed))
        << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  AttackKind out;
  EXPECT_FALSE(scenario::parse_attack_kind("hijac", out));
  EXPECT_FALSE(scenario::parse_attack_kind("", out));
}

TEST(EnumRoundTrip, SecurityModes) {
  for (const SecurityMode mode :
       {SecurityMode::kNone, SecurityMode::kDistributed,
        SecurityMode::kCentralized}) {
    SecurityMode parsed;
    ASSERT_TRUE(soc::parse_security_mode(to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
  SecurityMode out;
  EXPECT_FALSE(soc::parse_security_mode("decentralized", out));
}

TEST(EnumRoundTrip, ProtectionLevels) {
  for (const ProtectionLevel level :
       {ProtectionLevel::kPlaintext, ProtectionLevel::kCipherOnly,
        ProtectionLevel::kFull}) {
    ProtectionLevel parsed;
    ASSERT_TRUE(soc::parse_protection_level(to_string(level), parsed))
        << to_string(level);
    EXPECT_EQ(parsed, level);
  }
  // CLI short forms stay accepted.
  ProtectionLevel out;
  ASSERT_TRUE(soc::parse_protection_level("cipher", out));
  EXPECT_EQ(out, ProtectionLevel::kCipherOnly);
  ASSERT_TRUE(soc::parse_protection_level("full", out));
  EXPECT_EQ(out, ProtectionLevel::kFull);
  EXPECT_FALSE(soc::parse_protection_level("fulll", out));
}

TEST(EnumRoundTrip, TopologyLabels) {
  for (const TopologySpec& topo :
       {TopologySpec::flat(), TopologySpec::star(4), TopologySpec::star(64),
        TopologySpec::mesh(2, 2), TopologySpec::mesh(4, 4),
        TopologySpec::mesh(1, 8)}) {
    TopologySpec parsed;
    ASSERT_TRUE(soc::parse_topology(topo.label(), parsed)) << topo.label();
    EXPECT_TRUE(topology_equal(parsed, topo)) << topo.label();
  }
  TopologySpec out;
  EXPECT_FALSE(soc::parse_topology("ring4", out));
  EXPECT_FALSE(soc::parse_topology("star0", out));
  EXPECT_FALSE(soc::parse_topology("mesh2", out));
  EXPECT_FALSE(soc::parse_topology("mesh9x9", out));  // > 64 segments
}

TEST(SpecIo, NonDefaultHopLatencySurvives) {
  soc::TopologySpec topo = soc::TopologySpec::mesh(2, 3, 5);
  soc::TopologySpec back;
  std::string error;
  ASSERT_TRUE(
      topology_from_json(topology_to_json(topo), "topology", back, &error))
      << error;
  EXPECT_TRUE(topology_equal(back, topo));
}

TEST(SpecIo, EveryBuiltinSpecRoundTrips) {
  for (const scenario::NamedScenario& entry : scenario::builtin_scenarios()) {
    const util::Json j = spec_to_json(entry.spec);
    scenario::ScenarioSpec back;
    std::string error;
    ASSERT_TRUE(spec_from_json(j, "base", back, &error))
        << entry.spec.name << ": " << error;
    EXPECT_TRUE(spec_equal(back, entry.spec)) << entry.spec.name;

    // And through actual text, not just the Json tree.
    util::Json reparsed;
    ASSERT_TRUE(util::Json::parse(j.dump(), reparsed, &error))
        << entry.spec.name << ": " << error;
    scenario::ScenarioSpec back2;
    ASSERT_TRUE(spec_from_json(reparsed, "base", back2, &error))
        << entry.spec.name << ": " << error;
    EXPECT_TRUE(spec_equal(back2, entry.spec)) << entry.spec.name;
  }
}

TEST(SpecIo, EveryBuiltinAxesRoundTrip) {
  for (const scenario::NamedScenario& entry : scenario::builtin_scenarios()) {
    const util::Json j = axes_to_json(entry.axes);
    scenario::SweepAxes back;
    std::string error;
    ASSERT_TRUE(
        axes_from_json(j, "grid", entry.spec.soc.seed, back, &error))
        << entry.spec.name << ": " << error;
    EXPECT_TRUE(axes_equal(back, entry.axes)) << entry.spec.name;
  }
}

// The acceptance check behind "the registry becomes data": exporting a
// builtin to JSON and re-importing it must reproduce bit-identical results.
// Runs the two fast attack scenarios end to end (spec_equal + the existing
// determinism suite covers the rest by construction).
TEST(SpecIo, ReimportedBuiltinReproducesBitIdenticalResults) {
  for (const char* name : {"hijack", "fabric_containment"}) {
    const scenario::NamedScenario* entry = scenario::find_scenario(name);
    ASSERT_NE(entry, nullptr) << name;

    std::string error;
    util::Json reparsed;
    ASSERT_TRUE(util::Json::parse(
        campaign_to_json(campaign_from_builtin(*entry)).dump(), reparsed,
        &error))
        << error;
    CampaignSpec campaign;
    ASSERT_TRUE(campaign_from_json(reparsed, campaign, &error)) << error;

    const std::vector<scenario::ScenarioSpec> expected =
        scenario::expand(entry->spec, entry->axes);
    const std::vector<scenario::ScenarioSpec> imported =
        expand_campaign(campaign);
    ASSERT_EQ(imported.size(), expected.size());

    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(spec_equal(imported[i], expected[i])) << name;
      const scenario::JobResult a = scenario::run_scenario(expected[i]);
      const scenario::JobResult b = scenario::run_scenario(imported[i]);
      EXPECT_EQ(a.soc.cycles, b.soc.cycles);
      EXPECT_EQ(a.soc.transactions_ok, b.soc.transactions_ok);
      EXPECT_EQ(a.soc.transactions_failed, b.soc.transactions_failed);
      EXPECT_EQ(a.soc.alerts, b.soc.alerts);
      EXPECT_EQ(a.soc.bytes_moved, b.soc.bytes_moved);
      EXPECT_EQ(a.soc.latency_p50, b.soc.latency_p50);
      EXPECT_EQ(a.soc.latency_p99, b.soc.latency_p99);
      EXPECT_DOUBLE_EQ(a.soc.avg_access_latency, b.soc.avg_access_latency);
      EXPECT_DOUBLE_EQ(a.soc.bus_occupancy, b.soc.bus_occupancy);
      EXPECT_EQ(a.detected, b.detected);
      EXPECT_EQ(a.detection_cycle, b.detection_cycle);
      EXPECT_EQ(a.contained, b.contained);
      EXPECT_EQ(a.fw_blocked, b.fw_blocked);
    }
  }
}

TEST(SpecIo, TopologyObjectRejectsShapeKeysOfOtherKinds) {
  // "rows" on a star is a star/mesh mix-up, not a tunable to ignore.
  util::Json j;
  std::string error;
  ASSERT_TRUE(util::Json::parse(R"({"kind": "star", "rows": 4})", j, &error));
  soc::TopologySpec topo;
  EXPECT_FALSE(topology_from_json(j, "topology", topo, &error));
  EXPECT_NE(error.find("topology.rows"), std::string::npos) << error;
}

TEST(SpecIo, RateLimitMaxRejectsValuesThatWouldTruncate) {
  // 2^32 + 1 would wrap to 1 in the uint32 field; it must fail, not wrap.
  util::Json j;
  std::string error;
  ASSERT_TRUE(util::Json::parse(
      R"({"kind": "flood-throttled", "rate_limit_max": 4294967297})", j,
      &error));
  scenario::AttackPlan plan;
  EXPECT_FALSE(attack_from_json(j, "attack", plan, &error));
  EXPECT_NE(error.find("attack.rate_limit_max"), std::string::npos) << error;
}

TEST(SpecIo, UnknownKeysNameTheJsonPath) {
  util::Json j;
  std::string error;
  ASSERT_TRUE(util::Json::parse(
      R"({"soc": {"processors": 2, "procesors": 3}})", j, &error));
  scenario::ScenarioSpec spec;
  EXPECT_FALSE(spec_from_json(j, "base", spec, &error));
  EXPECT_NE(error.find("base.soc.procesors"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
}

TEST(SpecIo, BadEnumNamesThePathAndValue) {
  util::Json j;
  std::string error;
  ASSERT_TRUE(
      util::Json::parse(R"({"soc": {"protection": "fulll"}})", j, &error));
  scenario::ScenarioSpec spec;
  EXPECT_FALSE(spec_from_json(j, "base", spec, &error));
  EXPECT_NE(error.find("base.soc.protection"), std::string::npos) << error;
}

TEST(SpecIo, StructuralSocInvariantsAreFileErrorsNotAsserts) {
  scenario::ScenarioSpec spec;
  std::string error;
  util::Json j;
  // Protected window not anchored at the DDR base.
  ASSERT_TRUE(util::Json::parse(
      R"({"soc": {"ddr_base": 4096, "ddr_protected_base": 8192}})", j,
      &error));
  EXPECT_FALSE(spec_from_json(j, "base", spec, &error));
  EXPECT_NE(error.find("ddr_protected_base"), std::string::npos) << error;

  // Non-power-of-two line size.
  error.clear();
  ASSERT_TRUE(util::Json::parse(R"({"soc": {"line_bytes": 48}})", j, &error));
  scenario::ScenarioSpec spec2;
  EXPECT_FALSE(spec_from_json(j, "base", spec2, &error));
  EXPECT_NE(error.find("line_bytes"), std::string::npos) << error;
}

}  // namespace
}  // namespace secbus::campaign
