#include "campaign/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "scenario/registry.hpp"
#include "util/jsonl.hpp"

namespace secbus::campaign {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(testing::TempDir()) / "secbus_telemetry_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path_of(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(TelemetryTest, FileNameMatchesShardStem) {
  EXPECT_EQ(progress_file_name("grid", 2, 8),
            "grid.shard-2-of-8.progress.jsonl");
}

TEST_F(TelemetryTest, WriterRoundTripsRecords) {
  const std::string path = path_of(progress_file_name("grid", 0, 2));
  ProgressWriter w;
  // min_interval_ms = 0: every sample writes (no wall-clock throttling).
  ASSERT_TRUE(w.open(path, "grid", 0, 2, 0));
  w.update(1, 10);
  w.update(2, 10);
  w.finish(10, 10);
  EXPECT_TRUE(w.ok());
  w.close();

  std::vector<ProgressRecord> records;
  ASSERT_TRUE(read_progress_file(path, records));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].campaign, "grid");
  EXPECT_EQ(records[0].shard, 0u);
  EXPECT_EQ(records[0].shards, 2u);
  EXPECT_EQ(records[0].done, 1u);
  EXPECT_EQ(records[0].total, 10u);
  EXPECT_FALSE(records[0].finished);
  EXPECT_EQ(records[1].done, 2u);
  EXPECT_EQ(records[2].done, 10u);
  EXPECT_TRUE(records[2].finished);
}

TEST_F(TelemetryTest, ThrottleSuppressesIntermediateSamples) {
  const std::string path = path_of(progress_file_name("grid", 0, 1));
  ProgressWriter w;
  // A huge interval: only the first sample and the final record survive.
  ASSERT_TRUE(w.open(path, "grid", 0, 1, 3'600'000));
  for (std::size_t i = 1; i <= 50; ++i) w.update(i, 50);
  w.finish(50, 50);
  w.close();

  std::vector<ProgressRecord> records;
  ASSERT_TRUE(read_progress_file(path, records));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records.front().finished);
  EXPECT_TRUE(records.back().finished);
  EXPECT_EQ(records.back().done, 50u);
}

TEST_F(TelemetryTest, ReaderSkipsTornTail) {
  const std::string path = path_of(progress_file_name("grid", 0, 1));
  ProgressWriter w;
  ASSERT_TRUE(w.open(path, "grid", 0, 1, 0));
  w.update(1, 4);
  w.close();
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"campaign\": \"grid\", \"shard\"";  // worker died mid-write
  }
  std::vector<ProgressRecord> records;
  ASSERT_TRUE(read_progress_file(path, records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].done, 1u);
}

TEST_F(TelemetryTest, ScanFindsAndSortsShards) {
  for (std::size_t shard : {1u, 0u}) {  // created out of order
    ProgressWriter w;
    ASSERT_TRUE(
        w.open(path_of(progress_file_name("grid", shard, 2)), "grid", shard,
               2, 0));
    w.update(shard + 1, 5);
    if (shard == 0) w.finish(5, 5);
    w.close();
  }
  // Noise the scanner must ignore.
  {
    std::ofstream result(path_of("grid.shard-0-of-2.json"));
    result << "{}";
    std::ofstream noise(path_of("unrelated.txt"));
    noise << "hello";
  }

  std::vector<ShardProgress> shards;
  ASSERT_TRUE(scan_progress_dir(dir_.string(), shards));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].last.shard, 0u);
  EXPECT_TRUE(shards[0].last.finished);
  EXPECT_EQ(shards[0].last.done, 5u);
  EXPECT_EQ(shards[1].last.shard, 1u);
  EXPECT_FALSE(shards[1].last.finished);
  EXPECT_EQ(shards[1].records, 1u);

  const std::string table = render_campaign_status(shards);
  EXPECT_NE(table.find("grid"), std::string::npos);
  EXPECT_NE(table.find("finished"), std::string::npos);
  EXPECT_NE(table.find("running"), std::string::npos);
  EXPECT_NE(table.find("7/10 jobs done across 2 shard(s), 1 finished"),
            std::string::npos);
}

TEST_F(TelemetryTest, ParseProgressFileNameInvertsTheFormatter) {
  std::string campaign;
  std::size_t shard = 0;
  std::size_t shards = 0;
  ASSERT_TRUE(parse_progress_file_name(progress_file_name("my.grid-2", 3, 16),
                                       campaign, shard, shards));
  EXPECT_EQ(campaign, "my.grid-2");
  EXPECT_EQ(shard, 3u);
  EXPECT_EQ(shards, 16u);

  // Not the sidecar shape: rejected rather than misparsed.
  EXPECT_FALSE(parse_progress_file_name("grid.progress.jsonl", campaign,
                                        shard, shards));
  EXPECT_FALSE(parse_progress_file_name("grid.shard-x-of-2.progress.jsonl",
                                        campaign, shard, shards));
  EXPECT_FALSE(parse_progress_file_name("grid.shard-2-of-0.progress.jsonl",
                                        campaign, shard, shards));
  EXPECT_FALSE(parse_progress_file_name("grid.shard-5-of-2.progress.jsonl",
                                        campaign, shard, shards));
}

// `campaign status` must degrade, never error, when sidecars are empty or
// corrupt: those shards render as "unknown" rows with identity recovered
// from the file name.
TEST_F(TelemetryTest, ScanKeepsEmptyAndCorruptSidecarsAsUnknownRows) {
  // Shard 0: healthy and finished.
  {
    ProgressWriter w;
    ASSERT_TRUE(
        w.open(path_of(progress_file_name("grid", 0, 3)), "grid", 0, 3, 0));
    w.update(5, 5);
    w.finish(5, 5);
    w.close();
  }
  // Shard 1: empty file (worker died before its first record).
  { std::ofstream empty(path_of(progress_file_name("grid", 1, 3))); }
  // Shard 2: nothing but a torn fragment.
  {
    std::ofstream corrupt(path_of(progress_file_name("grid", 2, 3)));
    corrupt << "{\"campaign\": \"grid\", \"sh";
  }

  std::vector<ShardProgress> shards;
  ASSERT_TRUE(scan_progress_dir(dir_.string(), shards));
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_TRUE(shards[0].parsed);
  EXPECT_TRUE(shards[0].last.finished);
  for (const std::size_t i : {1u, 2u}) {
    EXPECT_FALSE(shards[i].parsed) << "shard " << i;
    EXPECT_EQ(shards[i].last.campaign, "grid") << "shard " << i;
    EXPECT_EQ(shards[i].last.shard, i) << "shard " << i;
    EXPECT_EQ(shards[i].last.shards, 3u) << "shard " << i;
  }

  const std::string table = render_campaign_status(shards);
  EXPECT_NE(table.find("finished"), std::string::npos);
  EXPECT_NE(table.find("unknown"), std::string::npos);
  EXPECT_NE(table.find(", 2 unknown"), std::string::npos);
}

TEST_F(TelemetryTest, StaleShardsRenderAsStale) {
  {
    ProgressWriter w;
    ASSERT_TRUE(
        w.open(path_of(progress_file_name("grid", 0, 1)), "grid", 0, 1, 0));
    w.update(1, 9);
    w.close();
  }
  std::vector<ShardProgress> shards;
  ASSERT_TRUE(scan_progress_dir(dir_.string(), shards));
  ASSERT_EQ(shards.size(), 1u);
  // The sidecar was written milliseconds ago: running at the default
  // threshold, stale when the threshold is tiny.
  EXPECT_NE(render_campaign_status(shards).find("running"),
            std::string::npos);
  shards[0].age_ms = 60'000;
  const std::string table =
      render_campaign_status(shards, /*stale_after_ms=*/30'000);
  EXPECT_NE(table.find("stale"), std::string::npos);
  EXPECT_EQ(table.find("running"), std::string::npos);
}

TEST_F(TelemetryTest, ScanFailsOnMissingDirectory) {
  std::vector<ShardProgress> shards;
  std::string error;
  EXPECT_FALSE(
      scan_progress_dir((dir_ / "nope").string(), shards, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(TelemetryTest, RenderOnEmptyInput) {
  EXPECT_EQ(render_campaign_status({}), "no progress files found\n");
}

// End to end through the shard runner: run_shard() with a progress_path
// writes a sidecar whose final record covers the whole slice.
TEST_F(TelemetryTest, RunShardWritesProgressSidecar) {
  const scenario::NamedScenario* named = scenario::find_scenario("hijack");
  ASSERT_NE(named, nullptr);
  std::vector<scenario::ScenarioSpec> specs(4, named->spec);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].soc.seed = 100 + i;
  }

  ShardRunOptions opt;
  opt.shard = 0;
  opt.shards = 2;
  opt.campaign = "mini";
  opt.progress_path = path_of(progress_file_name("mini", 0, 2));
  opt.progress_interval_ms = 0;
  const ShardRunOutcome outcome = run_shard(specs, opt);
  EXPECT_EQ(outcome.executed, 2u);  // round-robin: indices 0 and 2

  std::vector<ProgressRecord> records;
  ASSERT_TRUE(read_progress_file(opt.progress_path, records));
  ASSERT_GE(records.size(), 2u);  // at least one update + the final record
  EXPECT_EQ(records.back().campaign, "mini");
  EXPECT_EQ(records.back().done, 2u);
  EXPECT_EQ(records.back().total, 2u);
  EXPECT_TRUE(records.back().finished);
}

}  // namespace
}  // namespace secbus::campaign
