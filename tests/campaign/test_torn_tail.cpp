// Exhaustive torn-tail tolerance for the crash-safe JSONL sidecars.
//
// A chaos-killed (or power-cut) worker can leave its checkpoint or
// progress file truncated at *any* byte. These tests take real files
// written by the real writers and replay a copy truncated at every byte
// offset of the final records: replay must never crash, must restore
// exactly the records whose content bytes survived in full, and must
// never surface a partial record. This is the property that makes lease
// reassignment a resume instead of a gamble.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/shard.hpp"
#include "campaign/telemetry.hpp"
#include "util/fileio.hpp"

namespace secbus::campaign {
namespace {

std::string example_path(const std::string& name) {
  return std::string(SECBUS_REPO_DIR) + "/examples/campaigns/" + name;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("secbus_torn_" + std::to_string(::getpid()) + "_" + tag);
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// First `count` specs of the ci-smoke campaign: enough records to make the
// truncation sweep meaningful, small enough to keep it exhaustive.
std::vector<scenario::ScenarioSpec> small_grid(std::size_t count) {
  CampaignSpec spec;
  std::string error;
  EXPECT_TRUE(
      load_campaign_file(example_path("ci_smoke.json"), spec, &error))
      << error;
  std::vector<scenario::ScenarioSpec> specs = expand_campaign(spec);
  EXPECT_GE(specs.size(), count);
  specs.resize(count);
  return specs;
}

// Records in a JSONL prefix of length `keep`: a record survives iff every
// byte of its line content (everything before its newline) survived. The
// trailing newline itself is not required — a complete final line whose
// newline never hit the disk still parses.
std::size_t complete_lines_within(const std::string& text, std::size_t keep) {
  std::size_t complete = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t newline = text.find('\n', start);
    if (newline == std::string::npos) newline = text.size();
    if (newline <= keep) ++complete;
    start = newline + 1;
  }
  return complete;
}

void write_truncated(const std::string& path, const std::string& text,
                     std::size_t keep) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (keep > 0) {
    ASSERT_EQ(std::fwrite(text.data(), 1, keep, f), keep);
  }
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(TornTail, CheckpointReplayAtEveryTruncationOffset) {
  const std::vector<scenario::ScenarioSpec> specs = small_grid(4);
  TempDir dir("ckpt");
  const std::string ckpt = dir.file("torn.ckpt.jsonl");

  ShardRunOptions run;
  run.shard = 0;
  run.shards = 1;
  run.threads = 1;  // deterministic record order for the offset math
  run.checkpoint_path = ckpt;
  const ShardRunOutcome outcome = run_shard(specs, run);
  ASSERT_TRUE(outcome.checkpoint_ok);
  ASSERT_EQ(outcome.executed, specs.size());

  std::string text;
  std::string error;
  ASSERT_TRUE(util::read_file(ckpt, text, &error)) << error;
  ASSERT_FALSE(text.empty());

  // Sanity: the intact file restores everything.
  {
    std::vector<scenario::JobResult> results(specs.size());
    std::vector<char> done(specs.size(), 0);
    EXPECT_EQ(load_checkpoint(ckpt, specs, results, done), specs.size());
  }

  const std::string torn = dir.file("torn-copy.ckpt.jsonl");
  for (std::size_t keep = 0; keep <= text.size(); ++keep) {
    write_truncated(torn, text, keep);
    std::vector<scenario::JobResult> results(specs.size());
    std::vector<char> done(specs.size(), 0);
    const std::size_t restored = load_checkpoint(torn, specs, results, done);
    const std::size_t expected = complete_lines_within(text, keep);
    ASSERT_EQ(restored, expected) << "truncated at byte " << keep << " of "
                                  << text.size();
    // Exactly the restored jobs are marked done — no partial record ever
    // leaks into the results.
    std::size_t marked = 0;
    for (const char d : done) marked += d != 0;
    ASSERT_EQ(marked, restored) << "truncated at byte " << keep;
  }
}

TEST(TornTail, CheckpointResumeAfterTruncationRerunsOnlyTheLostTail) {
  const std::vector<scenario::ScenarioSpec> specs = small_grid(4);
  TempDir dir("resume");
  const std::string ckpt = dir.file("resume.ckpt.jsonl");

  ShardRunOptions run;
  run.shard = 0;
  run.shards = 1;
  run.threads = 1;
  run.checkpoint_path = ckpt;
  const ShardRunOutcome first = run_shard(specs, run);
  ASSERT_TRUE(first.checkpoint_ok);

  std::string text;
  ASSERT_TRUE(util::read_file(ckpt, text, nullptr));
  // Tear mid-way through the final record.
  const std::size_t last_newline = text.rfind('\n', text.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  const std::size_t keep = last_newline + 1 + (text.size() - last_newline) / 2;
  write_truncated(ckpt, text, keep);

  // The re-run resumes the intact records and recomputes only the torn one
  // — and the recomputed results are identical to the originals.
  const ShardRunOutcome second = run_shard(specs, run);
  EXPECT_EQ(second.resumed, specs.size() - 1);
  EXPECT_EQ(second.executed, 1u);
  ASSERT_EQ(second.results.size(), first.results.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(second.results[i].soc.cycles, first.results[i].soc.cycles)
        << "job " << i;
  }
}

TEST(TornTail, ProgressReplayAtEveryTruncationOffset) {
  TempDir dir("progress");
  const std::string path = dir.file("torn.progress.jsonl");
  {
    ProgressWriter writer;
    ASSERT_TRUE(writer.open(path, "torn-campaign", 2, 4,
                            /*min_interval_ms=*/0));
    for (std::size_t done = 1; done <= 5; ++done) writer.update(done, 5);
    writer.finish(5, 5);
  }

  std::string text;
  std::string error;
  ASSERT_TRUE(util::read_file(path, text, &error)) << error;
  ASSERT_FALSE(text.empty());

  const std::string torn = dir.file("torn-copy.progress.jsonl");
  for (std::size_t keep = 0; keep <= text.size(); ++keep) {
    write_truncated(torn, text, keep);
    std::vector<ProgressRecord> records;
    ASSERT_TRUE(read_progress_file(torn, records, &error)) << error;
    const std::size_t expected = complete_lines_within(text, keep);
    ASSERT_EQ(records.size(), expected)
        << "truncated at byte " << keep << " of " << text.size();
    // Whatever replayed is internally consistent, never a half-parsed row.
    for (const ProgressRecord& r : records) {
      EXPECT_EQ(r.campaign, "torn-campaign");
      EXPECT_EQ(r.shard, 2u);
      EXPECT_EQ(r.shards, 4u);
      EXPECT_LE(r.done, r.total);
    }
  }
}

TEST(TornTail, WriterReopenWeldsTornTailAndReplayStaysSane) {
  TempDir dir("weld");
  const std::string path = dir.file("weld.progress.jsonl");
  {
    ProgressWriter writer;
    ASSERT_TRUE(writer.open(path, "weld", 0, 1, 0));
    writer.update(1, 3);
    writer.update(2, 3);
  }
  // Tear the tail mid-record, then reopen: the new writer welds a newline
  // over the fragment so its own records start clean.
  std::string text;
  ASSERT_TRUE(util::read_file(path, text, nullptr));
  write_truncated(path, text, text.size() - 3);
  {
    ProgressWriter writer;
    ASSERT_TRUE(writer.open(path, "weld", 0, 1, 0));
    writer.finish(3, 3);
  }
  std::vector<ProgressRecord> records;
  ASSERT_TRUE(read_progress_file(path, records, nullptr));
  // First intact record + the post-weld final record survive; the torn
  // middle record is skipped.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].done, 1u);
  EXPECT_TRUE(records[1].finished);
  EXPECT_EQ(records[1].done, 3u);
}

}  // namespace
}  // namespace secbus::campaign
