#include "core/ciphering_firewall.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace secbus::core {
namespace {

using bus::DataFormat;
using bus::TransStatus;

constexpr sim::Addr kDdrBase = 0x8000'0000;
constexpr std::uint64_t kDdrSize = 64 * 1024;
constexpr std::uint64_t kProtSize = 8 * 1024;  // 256 lines of 32 bytes
constexpr FirewallId kFw = 10;

crypto::Aes128Key test_key() {
  crypto::Aes128Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return key;
}

struct LcfFixture {
  explicit LcfFixture(ConfidentialityMode cm, IntegrityMode im) {
    PolicyBuilder b(kFw);
    b.allow(kDdrBase, kDdrSize, RwAccess::kReadWrite, FormatMask::kAll, "ddr");
    b.confidentiality(cm);
    b.integrity(im);
    b.key(test_key());
    config_mem.install(kFw, b.build());

    mem::DdrMemory::Config ddr_cfg;
    ddr_cfg.base = kDdrBase;
    ddr_cfg.size = kDdrSize;
    ddr = std::make_unique<mem::DdrMemory>("ddr", ddr_cfg);

    LocalCipheringFirewall::Config cfg;
    cfg.protected_base = kDdrBase;
    cfg.protected_size = kProtSize;
    cfg.line_bytes = 32;
    lcf = std::make_unique<LocalCipheringFirewall>("lcf", kFw, config_mem, log,
                                                   *ddr, cfg);
  }

  bus::BusTransaction write(sim::Addr addr, std::vector<std::uint8_t> data,
                            sim::Cycle now = 0) {
    auto t = bus::make_write(0, addr, std::move(data));
    last_result = lcf->access(t, now);
    return t;
  }
  bus::BusTransaction read(sim::Addr addr, std::size_t bytes,
                           sim::Cycle now = 0) {
    auto t = bus::make_read(0, addr, DataFormat::kWord,
                            static_cast<std::uint16_t>(bytes / 4));
    last_result = lcf->access(t, now);
    return t;
  }
  std::vector<std::uint8_t> raw(sim::Addr addr, std::size_t len) {
    std::vector<std::uint8_t> out(len);
    ddr->store().peek(addr, {out.data(), out.size()});
    return out;
  }

  ConfigurationMemory config_mem;
  SecurityEventLog log;
  std::unique_ptr<mem::DdrMemory> ddr;
  std::unique_ptr<LocalCipheringFirewall> lcf;
  bus::AccessResult last_result;
};

std::vector<std::uint8_t> pattern(std::size_t len, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 3 + salt + 1);
  }
  return out;
}

TEST(Lcf, FullProtectionRoundTrip) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto data = pattern(32);
  f.write(kDdrBase, data);
  EXPECT_EQ(f.last_result.status, TransStatus::kOk);
  const auto back = f.read(kDdrBase, 32);
  EXPECT_EQ(back.status, TransStatus::kOk);
  EXPECT_EQ(back.data, data);
  EXPECT_TRUE(f.log.alerts().empty());
}

TEST(Lcf, CiphertextStoredNotPlaintext) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto data = pattern(32);
  f.write(kDdrBase, data);
  EXPECT_NE(f.raw(kDdrBase, 32), data);
}

TEST(Lcf, PlaintextModeStoresPlaintext) {
  LcfFixture f(ConfidentialityMode::kBypass, IntegrityMode::kBypass);
  const auto data = pattern(32);
  f.write(kDdrBase, data);
  EXPECT_EQ(f.raw(kDdrBase, 32), data);
}

TEST(Lcf, PartialWriteReadModifyWrite) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto line = pattern(32);
  f.write(kDdrBase, line);
  // Overwrite bytes 8..11 only.
  f.write(kDdrBase + 8, {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(f.lcf->stats().read_modify_writes, 1u);
  auto expected = line;
  expected[8] = 0xDE;
  expected[9] = 0xAD;
  expected[10] = 0xBE;
  expected[11] = 0xEF;
  EXPECT_EQ(f.read(kDdrBase, 32).data, expected);
}

TEST(Lcf, MultiLineWriteAndRead) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto data = pattern(96);  // 3 lines
  f.write(kDdrBase + 32, data);
  EXPECT_EQ(f.read(kDdrBase + 32, 96).data, data);
  EXPECT_EQ(f.lcf->stats().lines_encrypted, 3u);
}

TEST(Lcf, SpoofDetectedUnderFullProtection) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.write(kDdrBase, pattern(32));
  // Attacker overwrites ciphertext directly.
  const auto forged = pattern(32, 0x80);
  f.ddr->store().poke(kDdrBase, {forged.data(), forged.size()});
  const auto back = f.read(kDdrBase, 32);
  EXPECT_EQ(back.status, TransStatus::kIntegrityError);
  EXPECT_EQ(back.data, std::vector<std::uint8_t>(32, 0));  // discarded
  EXPECT_EQ(f.log.count_of(Violation::kIntegrityFailure), 1u);
  EXPECT_EQ(f.lcf->stats().integrity_failures, 1u);
}

TEST(Lcf, ReplayDetectedUnderFullProtection) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.write(kDdrBase, pattern(32, 1));
  const auto stale = f.raw(kDdrBase, 32);  // attacker records ciphertext
  f.write(kDdrBase, pattern(32, 2));       // victim updates (version bump)
  f.ddr->store().poke(kDdrBase, {stale.data(), stale.size()});  // replay
  EXPECT_EQ(f.read(kDdrBase, 32).status, TransStatus::kIntegrityError);
}

TEST(Lcf, RelocationDetectedUnderFullProtection) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.write(kDdrBase, pattern(32, 1));
  f.write(kDdrBase + 32, pattern(32, 2));
  const auto donor = f.raw(kDdrBase + 32, 32);
  f.ddr->store().poke(kDdrBase, {donor.data(), donor.size()});
  EXPECT_EQ(f.read(kDdrBase, 32).status, TransStatus::kIntegrityError);
}

TEST(Lcf, CipherOnlyMisssesTamperButGarbles) {
  // The paper's cipher-only case: the attacker can DoS by random changes;
  // no detection, but no meaningful data either.
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kBypass);
  const auto data = pattern(32);
  f.write(kDdrBase, data);
  auto tampered = f.raw(kDdrBase, 32);
  tampered[5] ^= 0xFF;
  f.ddr->store().poke(kDdrBase, {tampered.data(), tampered.size()});
  const auto back = f.read(kDdrBase, 32);
  EXPECT_EQ(back.status, TransStatus::kOk);  // NOT detected
  EXPECT_NE(back.data, data);                // but corrupted
  EXPECT_TRUE(f.log.alerts().empty());
}

TEST(Lcf, PlaintextModeAdmitsSpoofSilently) {
  LcfFixture f(ConfidentialityMode::kBypass, IntegrityMode::kBypass);
  f.write(kDdrBase, pattern(32));
  const auto forged = pattern(32, 0x80);
  f.ddr->store().poke(kDdrBase, {forged.data(), forged.size()});
  const auto back = f.read(kDdrBase, 32);
  EXPECT_EQ(back.status, TransStatus::kOk);
  EXPECT_EQ(back.data, forged);  // attack fully succeeded
  EXPECT_TRUE(f.log.alerts().empty());
}

TEST(Lcf, UnprotectedRegionPassesThrough) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const sim::Addr scratch = kDdrBase + kProtSize + 64;
  const auto data = pattern(16);
  f.write(scratch, data);
  EXPECT_EQ(f.raw(scratch, 16), data);  // plaintext: outside the window
  EXPECT_EQ(f.read(scratch, 16).data, data);
  EXPECT_EQ(f.lcf->stats().passthrough, 2u);
}

TEST(Lcf, RuleViolationBlockedBeforeMemory) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  auto t = bus::make_read(0, kDdrBase - 0x1000);  // outside every segment
  const auto result = f.lcf->access(t, 0);
  EXPECT_EQ(result.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(f.log.count_of(Violation::kNoMatchingSegment), 1u);
  EXPECT_EQ(f.ddr->stats().reads, 0u);
}

TEST(Lcf, ProtectedAccessCostsMoreThanPassthrough) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.write(kDdrBase, pattern(32));
  const sim::Cycle protected_cost = f.last_result.latency;
  f.write(kDdrBase + kProtSize + 64, pattern(32));
  const sim::Cycle passthrough_cost = f.last_result.latency;
  EXPECT_GT(protected_cost, passthrough_cost + 200);  // IC dominates
}

TEST(Lcf, TimingIncludesCcAndIcCharges) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.write(kDdrBase, pattern(32));
  // Write: check(12) + CC(11+ceil(256/4.5)=57) + IC(20+ceil(256/1.31)=196)
  //        + DDR write latency (>=5).
  EXPECT_GE(f.last_result.latency, 12u + 68u + 216u + 5u);
  const auto& cc_stats = f.lcf->cc().stats();
  const auto& ic_stats = f.lcf->ic().stats();
  EXPECT_EQ(cc_stats.operations, 1u);
  EXPECT_EQ(ic_stats.updates, 1u);
}

TEST(Lcf, FormatRegionZeroFills) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  f.lcf->format_protected_region();
  const auto back = f.read(kDdrBase + 4 * 32, 32);
  EXPECT_EQ(back.status, TransStatus::kOk);
  EXPECT_EQ(back.data, std::vector<std::uint8_t>(32, 0));
  // Stored form is ciphertext, not zeros.
  EXPECT_NE(f.raw(kDdrBase + 4 * 32, 32), std::vector<std::uint8_t>(32, 0));
}

TEST(Lcf, KeyRotationPreservesPlaintext) {
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto data = pattern(32, 5);
  f.write(kDdrBase + 64, data);
  const auto raw_before = f.raw(kDdrBase + 64, 32);

  crypto::Aes128Key new_key = test_key();
  new_key[15] ^= 0x55;
  const sim::Cycle cost = f.lcf->rotate_key(new_key);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(f.lcf->stats().key_rotations, 1u);

  EXPECT_NE(f.raw(kDdrBase + 64, 32), raw_before);  // re-encrypted
  const auto back = f.read(kDdrBase + 64, 32);
  EXPECT_EQ(back.status, TransStatus::kOk);
  EXPECT_EQ(back.data, data);
}

TEST(Lcf, PolicyModeChangeAppliesOnNextAccess) {
  LcfFixture f(ConfidentialityMode::kBypass, IntegrityMode::kBypass);
  EXPECT_EQ(f.lcf->cm(), ConfidentialityMode::kBypass);
  // Reconfigure to cipher mode (key unchanged).
  PolicyBuilder b(kFw);
  b.allow(kDdrBase, kDdrSize, RwAccess::kReadWrite, FormatMask::kAll, "ddr");
  b.confidentiality(ConfidentialityMode::kCipher);
  b.integrity(IntegrityMode::kHashTree);
  b.key(test_key());
  f.config_mem.install(kFw, b.build());

  f.write(kDdrBase + 2 * 32, pattern(32));
  EXPECT_EQ(f.lcf->cm(), ConfidentialityMode::kCipher);
  EXPECT_NE(f.raw(kDdrBase + 2 * 32, 32), pattern(32));
}

TEST(Lcf, EachWriteFreshCiphertext) {
  // Version-tweaked CTR: writing identical plaintext twice yields different
  // ciphertext (no deterministic-encryption leakage across writes).
  LcfFixture f(ConfidentialityMode::kCipher, IntegrityMode::kHashTree);
  const auto data = pattern(32);
  f.write(kDdrBase, data);
  const auto ct1 = f.raw(kDdrBase, 32);
  f.write(kDdrBase, data);
  const auto ct2 = f.raw(kDdrBase, 32);
  EXPECT_NE(ct1, ct2);
}

}  // namespace
}  // namespace secbus::core
