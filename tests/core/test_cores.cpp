// Tests for the Confidentiality Core and the Integrity Core in isolation.
#include <gtest/gtest.h>

#include "core/confidentiality_core.hpp"
#include "core/integrity_core.hpp"
#include "util/rng.hpp"

namespace secbus::core {
namespace {

crypto::Aes128Key test_key() {
  crypto::Aes128Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 11 + 1);
  }
  return key;
}

ConfidentialityCore::Config cc_config() {
  ConfidentialityCore::Config cfg;
  cfg.latency_cycles = 11;
  cfg.bits_per_cycle = 4.5;
  cfg.nonce = 0xC0FFEE;
  return cfg;
}

TEST(ConfidentialityCore, RoundTripSameAddressVersion) {
  ConfidentialityCore cc(test_key(), cc_config());
  std::vector<std::uint8_t> pt(32);
  util::Xoshiro256 rng(1);
  rng.fill(std::span<std::uint8_t>(pt.data(), pt.size()));
  std::vector<std::uint8_t> ct(32), back(32);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct);
  EXPECT_NE(ct, pt);
  (void)cc.decrypt(0x8000'0000, 1, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(ConfidentialityCore, WrongVersionDecryptsToGarbage) {
  ConfidentialityCore cc(test_key(), cc_config());
  const std::vector<std::uint8_t> pt(32, 0x5A);
  std::vector<std::uint8_t> ct(32), back(32);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct);
  (void)cc.decrypt(0x8000'0000, 2, ct, back);  // replayed under new version
  EXPECT_NE(back, pt);
}

TEST(ConfidentialityCore, WrongAddressDecryptsToGarbage) {
  ConfidentialityCore cc(test_key(), cc_config());
  const std::vector<std::uint8_t> pt(32, 0x5A);
  std::vector<std::uint8_t> ct(32), back(32);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct);
  (void)cc.decrypt(0x8000'0020, 1, ct, back);  // relocated
  EXPECT_NE(back, pt);
}

TEST(ConfidentialityCore, PerBlockTweaksWithinLine) {
  // Two identical plaintext blocks in one line must not produce identical
  // ciphertext blocks (each 16-byte block gets its own address tweak).
  ConfidentialityCore cc(test_key(), cc_config());
  const std::vector<std::uint8_t> pt(32, 0x77);
  std::vector<std::uint8_t> ct(32);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct);
  EXPECT_FALSE(std::equal(ct.begin(), ct.begin() + 16, ct.begin() + 16));
}

TEST(ConfidentialityCore, TableIITiming) {
  ConfidentialityCore cc(test_key(), cc_config());
  // Table II: 11-cycle latency; 256 bits at 4.5 bits/cycle = ceil(56.9) = 57.
  EXPECT_EQ(cc.cost_for_bits(256), 11u + 57u);
  // Throughput at saturation approaches 4.5 bits/cycle = 450 Mb/s @ 100MHz.
  const double sustained_bits_per_cycle =
      1e6 / static_cast<double>(cc.cost_for_bits(1'000'000) - 11);
  EXPECT_NEAR(sustained_bits_per_cycle, 4.5, 0.01);
}

TEST(ConfidentialityCore, StatsAccumulate) {
  ConfidentialityCore cc(test_key(), cc_config());
  const std::vector<std::uint8_t> pt(16, 0);
  std::vector<std::uint8_t> ct(16);
  const auto cycles = cc.encrypt(0x8000'0000, 1, pt, ct);
  EXPECT_EQ(cc.stats().operations, 1u);
  EXPECT_EQ(cc.stats().bytes, 16u);
  EXPECT_EQ(cc.stats().cycles_charged, cycles);
  cc.reset_stats();
  EXPECT_EQ(cc.stats().operations, 0u);
}

TEST(ConfidentialityCore, RekeyChangesCiphertext) {
  ConfidentialityCore cc(test_key(), cc_config());
  const std::vector<std::uint8_t> pt(16, 0x11);
  std::vector<std::uint8_t> ct1(16), ct2(16);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct1);
  crypto::Aes128Key other = test_key();
  other[0] ^= 0xFF;
  cc.rekey(other);
  (void)cc.encrypt(0x8000'0000, 1, pt, ct2);
  EXPECT_NE(ct1, ct2);
}

IntegrityCore::Config ic_config() {
  IntegrityCore::Config cfg;
  cfg.latency_cycles = 20;
  cfg.bits_per_cycle = 1.31;
  cfg.protected_base = 0x8000'0000;
  cfg.protected_size = 32 * 64;  // 64 lines
  cfg.line_bytes = 32;
  return cfg;
}

TEST(IntegrityCore, UpdateThenVerify) {
  IntegrityCore ic(ic_config());
  const std::vector<std::uint8_t> line(32, 0xAB);
  const auto update = ic.update_line(0x8000'0000, line);
  EXPECT_EQ(update.version, 1u);
  const auto verify = ic.verify_line(0x8000'0000, line);
  EXPECT_TRUE(verify.ok);
  EXPECT_EQ(ic.stats().updates, 1u);
  EXPECT_EQ(ic.stats().verifies, 1u);
  EXPECT_EQ(ic.stats().failures, 0u);
}

TEST(IntegrityCore, TamperedLineFailsVerify) {
  IntegrityCore ic(ic_config());
  std::vector<std::uint8_t> line(32, 0xAB);
  (void)ic.update_line(0x8000'0020, line);
  line[7] ^= 0x04;
  const auto verify = ic.verify_line(0x8000'0020, line);
  EXPECT_FALSE(verify.ok);
  EXPECT_EQ(ic.stats().failures, 1u);
}

TEST(IntegrityCore, VersionsTrackPerLine) {
  IntegrityCore ic(ic_config());
  const std::vector<std::uint8_t> line(32, 1);
  (void)ic.update_line(0x8000'0000, line);
  (void)ic.update_line(0x8000'0000, line);
  (void)ic.update_line(0x8000'0040, line);
  EXPECT_EQ(ic.version_of(0x8000'0000), 2u);
  EXPECT_EQ(ic.version_of(0x8000'0040), 1u);
  EXPECT_EQ(ic.version_of(0x8000'0020), 0u);
}

TEST(IntegrityCore, StaleVersionContentFailsAfterRewrite) {
  // The replay scenario at the IC level: content valid at version 1 fails
  // once the line advanced to version 2.
  IntegrityCore ic(ic_config());
  const std::vector<std::uint8_t> v1(32, 0x01);
  const std::vector<std::uint8_t> v2(32, 0x02);
  (void)ic.update_line(0x8000'0000, v1);
  (void)ic.update_line(0x8000'0000, v2);
  EXPECT_FALSE(ic.verify_line(0x8000'0000, v1).ok);
  EXPECT_TRUE(ic.verify_line(0x8000'0000, v2).ok);
}

TEST(IntegrityCore, TableIITiming) {
  IntegrityCore ic(ic_config());
  // Table II: 20-cycle latency; 256 bits / 1.31 = ceil(195.4) = 196.
  EXPECT_EQ(ic.cost_for_bits(256), 20u + 196u);
  const double sustained =
      1e6 / static_cast<double>(ic.cost_for_bits(1'000'000) - 20);
  EXPECT_NEAR(sustained, 1.31, 0.01);
}

TEST(IntegrityCore, AdvanceVersionSkipsTree) {
  IntegrityCore ic(ic_config());
  const auto hashes_before = ic.stats().hash_invocations;
  EXPECT_EQ(ic.advance_version(0x8000'0000), 1u);
  EXPECT_EQ(ic.advance_version(0x8000'0000), 2u);
  EXPECT_EQ(ic.stats().hash_invocations, hashes_before);
  EXPECT_EQ(ic.stats().updates, 0u);
}

TEST(IntegrityCore, VersionWrapCounted) {
  IntegrityCore ic(ic_config());
  ic.force_version(0x8000'0000, 0xFFFFFFFFu);
  const std::vector<std::uint8_t> line(32, 0x3C);
  const auto update = ic.update_line(0x8000'0000, line);
  EXPECT_EQ(update.version, 0u);  // wrapped
  EXPECT_EQ(ic.stats().version_wraps, 1u);
}

TEST(IntegrityCore, RebuildResetsVersions) {
  IntegrityCore ic(ic_config());
  const std::vector<std::uint8_t> line(32, 9);
  (void)ic.update_line(0x8000'0000, line);
  std::vector<std::uint8_t> image(ic.config().protected_size, 0);
  ic.rebuild_from(image);
  EXPECT_EQ(ic.version_of(0x8000'0000), 0u);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_TRUE(ic.verify_line(0x8000'0000, zeros).ok);
}

}  // namespace
}  // namespace secbus::core
