// SoC-setup memoization (core::FormatCache): the cached format must be
// indistinguishable — stored bytes, tree root, versions, runtime results —
// from the computing path, across protection modes, seeds and threads.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/format_cache.hpp"
#include "scenario/scenario.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"

namespace secbus::core {
namespace {

// The cache is process-global; every test starts it empty + enabled and
// leaves it that way for whoever runs next.
class FormatCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FormatCache::instance().clear();
    FormatCache::instance().set_enabled(true);
  }
  void TearDown() override {
    FormatCache::instance().clear();
    FormatCache::instance().set_enabled(true);
  }

  static std::uint64_t hits() { return FormatCache::instance().stats().hits; }
  static std::uint64_t misses() {
    return FormatCache::instance().stats().misses;
  }
};

soc::SocConfig protected_cfg(std::uint64_t seed,
                             soc::ProtectionLevel level) {
  soc::SocConfig cfg = soc::tiny_test_config();
  cfg.protection = level;
  cfg.seed = seed;
  cfg.transactions_per_cpu = 30;
  return cfg;
}

std::vector<std::uint8_t> protected_bytes(soc::Soc& soc) {
  const soc::SocConfig& cfg = soc.config();
  std::vector<std::uint8_t> bytes(cfg.ddr_protected_size);
  soc.ddr().store().read(cfg.ddr_protected_base,
                         std::span<std::uint8_t>(bytes.data(), bytes.size()));
  return bytes;
}

TEST_F(FormatCacheTest, SecondConstructionHitsAndMatchesBitForBit) {
  const std::uint64_t h0 = hits();
  soc::Soc cold(protected_cfg(42, soc::ProtectionLevel::kFull));
  EXPECT_EQ(hits(), h0);  // first build computes

  soc::Soc warm(protected_cfg(42, soc::ProtectionLevel::kFull));
  EXPECT_EQ(hits(), h0 + 1);  // second build restores

  ASSERT_NE(cold.lcf(), nullptr);
  ASSERT_NE(warm.lcf(), nullptr);
  EXPECT_EQ(cold.lcf()->ic().tree().root(), warm.lcf()->ic().tree().root());
  EXPECT_EQ(cold.lcf()->ic().version_of(cold.config().ddr_protected_base),
            warm.lcf()->ic().version_of(warm.config().ddr_protected_base));
  EXPECT_EQ(protected_bytes(cold), protected_bytes(warm));
}

TEST_F(FormatCacheTest, CachedRunIsBitIdenticalToUncachedRun) {
  FormatCache::instance().set_enabled(false);
  soc::Soc uncached(protected_cfg(99, soc::ProtectionLevel::kFull));
  const soc::SocResults r_off = uncached.run(5'000'000);

  FormatCache::instance().set_enabled(true);
  soc::Soc first(protected_cfg(99, soc::ProtectionLevel::kFull));  // warms
  soc::Soc second(protected_cfg(99, soc::ProtectionLevel::kFull));  // hits
  const soc::SocResults r_warm = second.run(5'000'000);

  EXPECT_EQ(r_off.cycles, r_warm.cycles);
  EXPECT_EQ(r_off.transactions_ok, r_warm.transactions_ok);
  EXPECT_EQ(r_off.transactions_failed, r_warm.transactions_failed);
  EXPECT_EQ(r_off.alerts, r_warm.alerts);
  EXPECT_EQ(r_off.bytes_moved, r_warm.bytes_moved);
  EXPECT_DOUBLE_EQ(r_off.avg_access_latency, r_warm.avg_access_latency);
}

TEST_F(FormatCacheTest, CipheredEntriesAreKeyedBySeed) {
  soc::Soc a(protected_cfg(1, soc::ProtectionLevel::kFull));
  const std::uint64_t h = hits();
  soc::Soc b(protected_cfg(2, soc::ProtectionLevel::kFull));
  EXPECT_EQ(hits(), h);  // different seed -> different key -> miss
  EXPECT_NE(a.lcf()->ic().tree().root(), b.lcf()->ic().tree().root());
}

TEST_F(FormatCacheTest, CipherOnlyAndFullShareOneEntry) {
  // The stored image and tree depend on CM + key, not on IM: cipher-only
  // and cipher+integrity jobs of the same seed share a format.
  soc::Soc full(protected_cfg(5, soc::ProtectionLevel::kFull));
  const std::uint64_t h = hits();
  soc::Soc cipher(protected_cfg(5, soc::ProtectionLevel::kCipherOnly));
  EXPECT_EQ(hits(), h + 1);
  EXPECT_EQ(protected_bytes(full), protected_bytes(cipher));
}

TEST_F(FormatCacheTest, PlaintextFormatsShareAcrossSeeds) {
  soc::Soc a(protected_cfg(1, soc::ProtectionLevel::kPlaintext));
  const std::uint64_t h = hits();
  soc::Soc b(protected_cfg(2, soc::ProtectionLevel::kPlaintext));
  EXPECT_EQ(hits(), h + 1);  // key-independent: zero image either way
  EXPECT_EQ(a.lcf()->ic().tree().root(), b.lcf()->ic().tree().root());
}

TEST_F(FormatCacheTest, DisabledCacheNeverServesOrStores) {
  FormatCache::instance().set_enabled(false);
  soc::Soc a(protected_cfg(7, soc::ProtectionLevel::kFull));
  soc::Soc b(protected_cfg(7, soc::ProtectionLevel::kFull));
  EXPECT_EQ(hits(), 0u);
  EXPECT_EQ(FormatCache::instance().stats().insertions, 0u);
  EXPECT_EQ(a.lcf()->ic().tree().root(), b.lcf()->ic().tree().root());
}

TEST_F(FormatCacheTest, EvictionKeepsTheCacheBounded) {
  FormatCache& cache = FormatCache::instance();
  FormatKey key;
  key.protected_size = 4096;
  key.line_bytes = 32;
  key.ciphered = true;
  for (std::uint64_t i = 0; i < FormatCache::kMaxEntries + 8; ++i) {
    key.protected_base = i * 0x10000;
    cache.insert(key, std::make_shared<FormatSnapshot>());
  }
  EXPECT_EQ(cache.stats().evictions, 8u);
  // FIFO: the oldest keys fell out, the newest survive.
  key.protected_base = 0;
  EXPECT_EQ(cache.find(key), nullptr);
  key.protected_base = (FormatCache::kMaxEntries + 7) * 0x10000;
  EXPECT_NE(cache.find(key), nullptr);
}

TEST_F(FormatCacheTest, ConcurrentConstructionIsSafeAndConverges) {
  // Batch-runner shape: many threads building identical SoCs; all formats
  // must agree and the cache must end with exactly one entry.
  std::vector<std::thread> pool;
  std::vector<crypto::Sha256Digest> roots(8);
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([t, &roots] {
      soc::Soc soc(protected_cfg(123, soc::ProtectionLevel::kFull));
      roots[static_cast<std::size_t>(t)] = soc.lcf()->ic().tree().root();
    });
  }
  for (std::thread& t : pool) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(roots[0], roots[t]);
  EXPECT_EQ(FormatCache::instance().stats().insertions, 1u);
}

}  // namespace
}  // namespace secbus::core
