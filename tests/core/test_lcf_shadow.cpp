// Property test: the Local Ciphering Firewall, across random mixed
// workloads, must behave exactly like a plain byte-addressable memory —
// encryption, integrity trees, versions and read-modify-writes are
// semantically invisible to legitimate traffic. A shadow byte array models
// the expected contents; any divergence is a correctness bug in the
// CC/IC/RMW machinery.
#include <gtest/gtest.h>

#include <vector>

#include "core/ciphering_firewall.hpp"
#include "util/rng.hpp"

namespace secbus::core {
namespace {

constexpr sim::Addr kBase = 0x8000'0000;
constexpr std::uint64_t kDdrSize = 64 * 1024;
constexpr std::uint64_t kProtSize = 16 * 1024;
constexpr FirewallId kFw = 21;

struct ShadowParam {
  ConfidentialityMode cm;
  IntegrityMode im;
  std::uint64_t seed;
};

class LcfShadowSweep : public ::testing::TestWithParam<ShadowParam> {};

TEST_P(LcfShadowSweep, RandomOpsMatchShadowMemory) {
  const ShadowParam param = GetParam();

  ConfigurationMemory config_mem;
  SecurityEventLog log;
  crypto::Aes128Key key{};
  key[3] = 0x77;
  PolicyBuilder b(kFw);
  b.allow(kBase, kDdrSize, RwAccess::kReadWrite, FormatMask::kAll, "ddr");
  b.confidentiality(param.cm);
  b.integrity(param.im);
  b.key(key);
  config_mem.install(kFw, b.build());

  mem::DdrMemory::Config ddr_cfg;
  ddr_cfg.base = kBase;
  ddr_cfg.size = kDdrSize;
  mem::DdrMemory ddr("ddr", ddr_cfg);

  LocalCipheringFirewall::Config cfg;
  cfg.protected_base = kBase;
  cfg.protected_size = kProtSize;
  cfg.line_bytes = 32;
  LocalCipheringFirewall lcf("lcf", kFw, config_mem, log, ddr, cfg);
  lcf.format_protected_region();

  // Shadow model: plain bytes, zero-initialized like the formatted region.
  std::vector<std::uint8_t> shadow(kDdrSize, 0);

  util::Xoshiro256 rng(param.seed);
  sim::Cycle now = 0;
  for (int op = 0; op < 400; ++op) {
    // Random span: 1..8 beats of a random format, anywhere in the DDR
    // (protected window and unprotected scratch both exercised).
    const bus::DataFormat fmt = rng.chance(0.2)   ? bus::DataFormat::kByte
                                : rng.chance(0.3) ? bus::DataFormat::kHalfWord
                                                  : bus::DataFormat::kWord;
    const auto burst = static_cast<std::uint16_t>(rng.range(1, 8));
    const std::uint64_t bytes = burst * bus::beat_bytes(fmt);
    const sim::Addr addr =
        kBase + rng.below(kDdrSize - bytes) / bus::beat_bytes(fmt) *
                    bus::beat_bytes(fmt);

    now += 500;  // keep per-op times monotonic
    if (rng.chance(0.5)) {
      std::vector<std::uint8_t> payload(bytes);
      rng.fill({payload.data(), payload.size()});
      std::copy(payload.begin(), payload.end(),
                shadow.begin() + static_cast<long>(addr - kBase));
      auto t = bus::make_write(0, addr, std::move(payload), fmt);
      const auto result = lcf.access(t, now);
      ASSERT_EQ(result.status, bus::TransStatus::kOk)
          << "write failed at op " << op << " addr 0x" << std::hex << addr;
    } else {
      auto t = bus::make_read(0, addr, fmt, burst);
      const auto result = lcf.access(t, now);
      ASSERT_EQ(result.status, bus::TransStatus::kOk)
          << "read failed at op " << op << " addr 0x" << std::hex << addr;
      const std::vector<std::uint8_t> expected(
          shadow.begin() + static_cast<long>(addr - kBase),
          shadow.begin() + static_cast<long>(addr - kBase + bytes));
      ASSERT_EQ(t.data, expected)
          << "read mismatch at op " << op << " addr 0x" << std::hex << addr;
    }
  }
  EXPECT_EQ(log.count(), 0u) << "legitimate traffic must never alert";
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, LcfShadowSweep,
    ::testing::Values(
        ShadowParam{ConfidentialityMode::kBypass, IntegrityMode::kBypass, 1},
        ShadowParam{ConfidentialityMode::kCipher, IntegrityMode::kBypass, 2},
        ShadowParam{ConfidentialityMode::kCipher, IntegrityMode::kHashTree, 3},
        ShadowParam{ConfidentialityMode::kCipher, IntegrityMode::kHashTree, 4},
        ShadowParam{ConfidentialityMode::kCipher, IntegrityMode::kHashTree, 5},
        ShadowParam{ConfidentialityMode::kBypass, IntegrityMode::kHashTree, 6}),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param.cm)) == "cipher"
                 ? (param_info.param.im == IntegrityMode::kHashTree
                        ? "full_seed" + std::to_string(param_info.param.seed)
                        : "cipheronly_seed" + std::to_string(param_info.param.seed))
                 : (param_info.param.im == IntegrityMode::kHashTree
                        ? "integrityonly_seed" + std::to_string(param_info.param.seed)
                        : "plain_seed" + std::to_string(param_info.param.seed));
    });

}  // namespace
}  // namespace secbus::core
