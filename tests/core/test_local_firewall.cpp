#include "core/local_firewall.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::core {
namespace {

using bus::BusOp;
using bus::DataFormat;
using bus::TransStatus;

// Master-side firewall in front of a real bus + BRAM.
struct MasterFirewallFixture : public ::testing::Test {
  void SetUp() override {
    PolicyBuilder b(1);
    b.allow(0x0000, 0x800, RwAccess::kReadWrite, FormatMask::kAll, "rw");
    b.allow(0x0800, 0x800, RwAccess::kReadOnly, FormatMask::k32, "ro");
    config_mem.install(1, b.build());

    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x1000, sid, "bram");

    fw = std::make_unique<LocalFirewall>("lf_test", 1, config_mem, log);
    fw->connect_bus(bus_obj->attach_master(0, "m0"));
    kernel.add(*fw);
    kernel.add(*bus_obj);
  }

  // Pushes a transaction into the firewall's IP side and runs to response.
  bus::BusTransaction submit(bus::BusTransaction t, sim::Cycle max = 200) {
    t.issued_at = kernel.now();
    fw->ip_side().request.push(std::move(t));
    const bool done = kernel.run_until(
        [this] { return !fw->ip_side().response.empty(); }, max);
    EXPECT_TRUE(done) << "no response within " << max << " cycles";
    return *fw->ip_side().response.pop();
  }

  sim::SimKernel kernel;
  ConfigurationMemory config_mem;
  SecurityEventLog log;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
  std::unique_ptr<LocalFirewall> fw;
};

TEST_F(MasterFirewallFixture, AllowedWriteReachesMemory) {
  const auto resp = submit(bus::make_write(0, 0x100, {1, 2, 3, 4}));
  EXPECT_EQ(resp.status, TransStatus::kOk);
  EXPECT_EQ(fw->stats().passed, 1u);
  EXPECT_EQ(fw->stats().blocked, 0u);
  EXPECT_EQ(bram.writes(), 1u);
  EXPECT_TRUE(log.alerts().empty());
}

TEST_F(MasterFirewallFixture, AllowedReadReturnsData) {
  (void)submit(bus::make_write(0, 0x100, {5, 6, 7, 8}));
  const auto resp = submit(bus::make_read(0, 0x100));
  EXPECT_EQ(resp.status, TransStatus::kOk);
  EXPECT_EQ(resp.data, (std::vector<std::uint8_t>{5, 6, 7, 8}));
  EXPECT_EQ(fw->stats().responses_gated, 2u);
}

TEST_F(MasterFirewallFixture, CheckAddsTwelveCycles) {
  const auto resp = submit(bus::make_read(0, 0x100));
  // Pipeline: SB check occupies cycles 0..11 (12 cycles); the firewall
  // pushes bus-ward during its cycle-11 tick, the bus (ticking later the
  // same cycle) grants immediately, and the transfer takes 1 addr + 1 BRAM
  // latency + 1 beat, completing at cycle 13 — the check's final cycle
  // overlaps the bus grant.
  EXPECT_EQ(resp.completed_at - resp.issued_at, 13u);
  EXPECT_EQ(fw->stats().check_cycles, 12u);
}

TEST_F(MasterFirewallFixture, WriteToReadOnlyBlockedBeforeBus) {
  const auto resp = submit(bus::make_write(0, 0x900, {1, 2, 3, 4}));
  EXPECT_EQ(resp.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(fw->stats().blocked, 1u);
  EXPECT_EQ(fw->stats().violation_count(Violation::kRwViolation), 1u);
  // Containment: the transaction never reached the bus or the memory.
  EXPECT_EQ(bus_obj->stats().transactions, 0u);
  EXPECT_EQ(bram.writes(), 0u);
  // Alert raised with the right shape.
  ASSERT_EQ(log.count(), 1u);
  EXPECT_EQ(log.alerts()[0].violation, Violation::kRwViolation);
  EXPECT_EQ(log.alerts()[0].firewall, 1u);
  EXPECT_EQ(log.alerts()[0].addr, 0x900u);
}

TEST_F(MasterFirewallFixture, OutOfSegmentBlocked) {
  const auto resp = submit(bus::make_read(0, 0x4000));
  EXPECT_EQ(resp.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(fw->stats().violation_count(Violation::kNoMatchingSegment), 1u);
}

TEST_F(MasterFirewallFixture, BadFormatBlocked) {
  const auto resp = submit(bus::make_read(0, 0x900, DataFormat::kByte));
  EXPECT_EQ(resp.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(fw->stats().violation_count(Violation::kFormatViolation), 1u);
}

TEST_F(MasterFirewallFixture, DiscardedWriteDataZeroed) {
  const auto resp = submit(bus::make_write(0, 0x900, {0xAA, 0xBB, 0xCC, 0xDD}));
  EXPECT_EQ(resp.data, std::vector<std::uint8_t>(4, 0));
}

TEST_F(MasterFirewallFixture, ChecksSerializeAcrossRequests) {
  bus::BusTransaction t1 = bus::make_read(0, 0x100);
  bus::BusTransaction t2 = bus::make_read(0, 0x200);
  t1.issued_at = t2.issued_at = 0;
  fw->ip_side().request.push(std::move(t1));
  fw->ip_side().request.push(std::move(t2));
  kernel.run(100);
  ASSERT_EQ(fw->ip_side().response.size(), 2u);
  const auto r1 = *fw->ip_side().response.pop();
  const auto r2 = *fw->ip_side().response.pop();
  // Second response at least 12 cycles (one SB slot) after the first.
  EXPECT_GE(r2.completed_at, r1.completed_at + 12u);
  EXPECT_EQ(fw->stats().secpol_reqs, 2u);
}

TEST_F(MasterFirewallFixture, IdleReflectsInFlightWork) {
  EXPECT_TRUE(fw->idle());
  fw->ip_side().request.push(bus::make_read(0, 0x100));
  EXPECT_FALSE(fw->idle());
  kernel.run(100);
  (void)fw->ip_side().response.pop();
  EXPECT_TRUE(fw->idle());
}

TEST_F(MasterFirewallFixture, ParanoidRecheckOnResponses) {
  LocalFirewall::Config cfg;
  cfg.recheck_responses = true;
  auto paranoid = std::make_unique<LocalFirewall>("lf_paranoid", 1, config_mem,
                                                  log, cfg);
  paranoid->connect_bus(bus_obj->attach_master(1, "m1"));
  kernel.add(*paranoid);

  bus::BusTransaction t = bus::make_read(0, 0x100);
  t.issued_at = kernel.now();
  paranoid->ip_side().request.push(std::move(t));
  kernel.run_until([&] { return !paranoid->ip_side().response.empty(); }, 200);
  ASSERT_FALSE(paranoid->ip_side().response.empty());
  EXPECT_EQ(paranoid->ip_side().response.pop()->status, TransStatus::kOk);
  // Request check (12) + response re-check (12).
  EXPECT_EQ(paranoid->stats().check_cycles, 24u);
}

TEST_F(MasterFirewallFixture, ResetClearsState) {
  (void)submit(bus::make_read(0, 0x100));
  fw->reset();
  EXPECT_EQ(fw->stats().secpol_reqs, 0u);
  EXPECT_TRUE(fw->idle());
}

// Slave-side firewall decorating a BRAM.
struct SlaveFirewallFixture : public ::testing::Test {
  void SetUp() override {
    PolicyBuilder b(2);
    b.allow(0x0000, 0x800, RwAccess::kReadWrite, FormatMask::kAll, "rw");
    b.allow(0x0800, 0x800, RwAccess::kReadOnly, FormatMask::k32, "ro");
    config_mem.install(2, b.build());
    fw = std::make_unique<SlaveFirewall>("slf", 2, config_mem, log, bram);
  }

  ConfigurationMemory config_mem;
  SecurityEventLog log;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<SlaveFirewall> fw;
};

TEST_F(SlaveFirewallFixture, AllowedAccessAddsCheckLatency) {
  auto w = bus::make_write(0, 0x100, {1, 2, 3, 4});
  const auto result = fw->access(w, 0);
  EXPECT_EQ(result.status, TransStatus::kOk);
  EXPECT_EQ(result.latency, 12u + 1u);  // SB check + BRAM latency
  EXPECT_EQ(bram.writes(), 1u);
}

TEST_F(SlaveFirewallFixture, ViolationNeverReachesDevice) {
  auto w = bus::make_write(0, 0x900, {1, 2, 3, 4});
  const auto result = fw->access(w, 0);
  EXPECT_EQ(result.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(result.latency, 12u);
  EXPECT_EQ(bram.writes(), 0u);
  EXPECT_EQ(log.count(), 1u);
  EXPECT_EQ(fw->stats().blocked, 1u);
}

TEST_F(SlaveFirewallFixture, BlockedReadDataZeroed) {
  // Preload then attempt a byte read of the 32-bit-only segment.
  bram.store().write_byte(0x900, 0x7F);
  auto r = bus::make_read(0, 0x900, DataFormat::kByte);
  r.data.assign(1, 0x55);  // stale buffer contents
  const auto result = fw->access(r, 0);
  EXPECT_EQ(result.status, TransStatus::kSecurityViolation);
  EXPECT_EQ(r.data, std::vector<std::uint8_t>(1, 0));
}

TEST_F(SlaveFirewallFixture, StatsAccumulate) {
  auto ok = bus::make_read(0, 0x100);
  auto bad = bus::make_write(0, 0x900, {1, 2, 3, 4});
  (void)fw->access(ok, 0);
  (void)fw->access(bad, 20);
  EXPECT_EQ(fw->stats().secpol_reqs, 2u);
  EXPECT_EQ(fw->stats().passed, 1u);
  EXPECT_EQ(fw->stats().blocked, 1u);
  EXPECT_EQ(fw->stats().check_cycles, 24u);
}

}  // namespace
}  // namespace secbus::core
