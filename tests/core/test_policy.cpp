#include "core/security_policy.hpp"

#include <gtest/gtest.h>

namespace secbus::core {
namespace {

using bus::BusOp;
using bus::DataFormat;

SecurityPolicy make_policy() {
  return PolicyBuilder(7)
      .allow(0x0000, 0x1000, RwAccess::kReadWrite, FormatMask::kAll, "scratch")
      .allow(0x1000, 0x1000, RwAccess::kReadOnly, FormatMask::k32, "code")
      .allow(0x2000, 0x1000, RwAccess::kWriteOnly, FormatMask::k8_16, "mailbox")
      .build();
}

TEST(RwAccessRules, AllowsMatrix) {
  EXPECT_FALSE(allows(RwAccess::kNone, BusOp::kRead));
  EXPECT_FALSE(allows(RwAccess::kNone, BusOp::kWrite));
  EXPECT_TRUE(allows(RwAccess::kReadOnly, BusOp::kRead));
  EXPECT_FALSE(allows(RwAccess::kReadOnly, BusOp::kWrite));
  EXPECT_FALSE(allows(RwAccess::kWriteOnly, BusOp::kRead));
  EXPECT_TRUE(allows(RwAccess::kWriteOnly, BusOp::kWrite));
  EXPECT_TRUE(allows(RwAccess::kReadWrite, BusOp::kRead));
  EXPECT_TRUE(allows(RwAccess::kReadWrite, BusOp::kWrite));
}

TEST(FormatMaskRules, AllowsMatrix) {
  EXPECT_TRUE(allows(FormatMask::kAll, DataFormat::kByte));
  EXPECT_TRUE(allows(FormatMask::kAll, DataFormat::kWord));
  EXPECT_FALSE(allows(FormatMask::k32, DataFormat::kByte));
  EXPECT_FALSE(allows(FormatMask::k32, DataFormat::kHalfWord));
  EXPECT_TRUE(allows(FormatMask::k32, DataFormat::kWord));
  EXPECT_TRUE(allows(FormatMask::k8_16, DataFormat::kByte));
  EXPECT_TRUE(allows(FormatMask::k8_16, DataFormat::kHalfWord));
  EXPECT_FALSE(allows(FormatMask::k8_16, DataFormat::kWord));
  EXPECT_FALSE(allows(FormatMask::kNone, DataFormat::kByte));
  EXPECT_EQ(FormatMask::k8 | FormatMask::k16, FormatMask::k8_16);
}

TEST(SecurityPolicy, AllowedAccessInsideSegment) {
  const SecurityPolicy p = make_policy();
  const auto d = p.evaluate(BusOp::kRead, 0x0100, 4, DataFormat::kWord);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kNone);
  ASSERT_TRUE(d.rule_index.has_value());
  EXPECT_EQ(*d.rule_index, 0u);
}

TEST(SecurityPolicy, NoMatchingSegment) {
  const SecurityPolicy p = make_policy();
  const auto d = p.evaluate(BusOp::kRead, 0x5000, 4, DataFormat::kWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kNoMatchingSegment);
  EXPECT_FALSE(d.rule_index.has_value());
}

TEST(SecurityPolicy, StraddlingSegmentsIsNoMatch) {
  const SecurityPolicy p = make_policy();
  // 8 bytes starting 4 before the segment boundary: covered by neither rule
  // alone even though both sides are individually allowed.
  const auto d = p.evaluate(BusOp::kRead, 0x0FFC, 8, DataFormat::kWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kNoMatchingSegment);
}

TEST(SecurityPolicy, RwViolationWriteToReadOnly) {
  const SecurityPolicy p = make_policy();
  const auto d = p.evaluate(BusOp::kWrite, 0x1100, 4, DataFormat::kWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kRwViolation);
  ASSERT_TRUE(d.rule_index.has_value());
  EXPECT_EQ(*d.rule_index, 1u);
}

TEST(SecurityPolicy, RwViolationReadFromWriteOnly) {
  const SecurityPolicy p = make_policy();
  const auto d = p.evaluate(BusOp::kRead, 0x2100, 2, DataFormat::kHalfWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kRwViolation);
}

TEST(SecurityPolicy, FormatViolation) {
  const SecurityPolicy p = make_policy();
  const auto byte_read = p.evaluate(BusOp::kRead, 0x1100, 1, DataFormat::kByte);
  EXPECT_FALSE(byte_read.allowed);
  EXPECT_EQ(byte_read.violation, Violation::kFormatViolation);
  const auto word_write =
      p.evaluate(BusOp::kWrite, 0x2100, 4, DataFormat::kWord);
  EXPECT_FALSE(word_write.allowed);
  EXPECT_EQ(word_write.violation, Violation::kFormatViolation);
}

TEST(SecurityPolicy, SegmentBoundariesExact) {
  const SecurityPolicy p = make_policy();
  // Last word of the scratch segment.
  EXPECT_TRUE(p.evaluate(BusOp::kWrite, 0x0FFC, 4, DataFormat::kWord).allowed);
  // First word of the code segment.
  EXPECT_TRUE(p.evaluate(BusOp::kRead, 0x1000, 4, DataFormat::kWord).allowed);
}

TEST(SecurityPolicy, LockdownRejectsEverything) {
  const SecurityPolicy p = make_lockdown_policy(9);
  EXPECT_TRUE(p.lockdown);
  const auto d = p.evaluate(BusOp::kRead, 0x0000, 4, DataFormat::kWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kPolicyLockdown);
}

TEST(PolicyBuilder, CarriesModesAndKey) {
  crypto::Aes128Key key{};
  key[0] = 0x42;
  const SecurityPolicy p = PolicyBuilder(3)
                               .allow(0, 64, RwAccess::kReadWrite)
                               .confidentiality(ConfidentialityMode::kCipher)
                               .integrity(IntegrityMode::kHashTree)
                               .key(key)
                               .build();
  EXPECT_EQ(p.spi, 3u);
  EXPECT_EQ(p.cm, ConfidentialityMode::kCipher);
  EXPECT_EQ(p.im, IntegrityMode::kHashTree);
  EXPECT_EQ(p.key[0], 0x42);
  EXPECT_EQ(p.rule_count(), 1u);
}

TEST(PolicyBuilderDeathTest, OverlappingSegmentsAbort) {
  PolicyBuilder b(1);
  b.allow(0x0000, 0x100, RwAccess::kReadWrite);
  b.allow(0x00FF, 0x100, RwAccess::kReadOnly);
  EXPECT_DEATH((void)b.build(), "disjoint");
}

TEST(ViolationNames, Stable) {
  EXPECT_STREQ(to_string(Violation::kNoMatchingSegment), "no_matching_segment");
  EXPECT_STREQ(to_string(Violation::kRwViolation), "rw_violation");
  EXPECT_STREQ(to_string(Violation::kFormatViolation), "format_violation");
  EXPECT_STREQ(to_string(Violation::kIntegrityFailure), "integrity_failure");
  EXPECT_STREQ(to_string(Violation::kPolicyLockdown), "policy_lockdown");
}

TEST(PolicyToString, FormatsAndModes) {
  EXPECT_EQ(to_string(FormatMask::kAll), "8/16/32-bit");
  EXPECT_EQ(to_string(FormatMask::k32), "32-bit");
  EXPECT_EQ(to_string(FormatMask::kNone), "none");
  EXPECT_STREQ(to_string(RwAccess::kReadOnly), "read-only");
  EXPECT_STREQ(to_string(ConfidentialityMode::kCipher), "cipher");
  EXPECT_STREQ(to_string(IntegrityMode::kHashTree), "hash-tree");
}

}  // namespace
}  // namespace secbus::core
