// Differential validation of the compiled policy index: across randomized
// rule sets, thread overlays and reconfigurations, CompiledPolicyIndex (one
// binary search per check) must reach the exact decisions of the linear
// reference scan (SecurityPolicy::evaluate), including the matched rule
// index and the violation kind.
#include "core/policy_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/config_memory.hpp"
#include "core/security_builder.hpp"
#include "core/security_policy.hpp"
#include "util/rng.hpp"

namespace secbus::core {
namespace {

RwAccess random_rwa(util::Xoshiro256& rng) {
  return static_cast<RwAccess>(rng.below(4));
}

FormatMask random_adf(util::Xoshiro256& rng) {
  return static_cast<FormatMask>(rng.below(8));
}

// Builds a random disjoint rule list in *shuffled declaration order* (the
// index must sort internally; the reference scans declaration order).
std::vector<SegmentRule> random_rules(util::Xoshiro256& rng, std::size_t count) {
  std::vector<SegmentRule> rules;
  sim::Addr cursor = rng.below(0x1000);
  for (std::size_t i = 0; i < count; ++i) {
    SegmentRule rule;
    rule.base = cursor;
    rule.size = 4 + rng.below(0x400);
    rule.rwa = random_rwa(rng);
    rule.adf = random_adf(rng);
    rules.push_back(rule);
    cursor = rule.base + rule.size + rng.below(0x200);  // gap (possibly 0)
  }
  // Shuffle declaration order.
  for (std::size_t i = rules.size(); i > 1; --i) {
    std::swap(rules[i - 1], rules[rng.below(i)]);
  }
  return rules;
}

SecurityPolicy random_policy(util::Xoshiro256& rng) {
  SecurityPolicy policy;
  policy.spi = static_cast<std::uint32_t>(rng.below(1000));
  policy.rules = random_rules(rng, 1 + rng.below(12));
  const std::size_t overlays = rng.below(4);
  for (std::size_t t = 0; t < overlays; ++t) {
    ThreadOverlay overlay;
    overlay.thread = static_cast<bus::ThreadId>(1 + t);
    overlay.rules = random_rules(rng, rng.below(6));  // possibly empty
    policy.thread_overlays.push_back(std::move(overlay));
  }
  return policy;
}

struct Probe {
  bus::BusOp op;
  sim::Addr addr;
  std::uint64_t len;
  bus::DataFormat fmt;
  bus::ThreadId thread;
};

Probe random_probe(util::Xoshiro256& rng, const SecurityPolicy& policy) {
  Probe p;
  p.op = rng.below(2) == 0 ? bus::BusOp::kRead : bus::BusOp::kWrite;
  p.fmt = rng.below(3) == 0   ? bus::DataFormat::kByte
          : rng.below(2) == 0 ? bus::DataFormat::kHalfWord
                              : bus::DataFormat::kWord;
  p.len = 1 + rng.below(64);
  p.thread = static_cast<bus::ThreadId>(rng.below(6));
  // Bias probes toward rule boundaries so edge cases (exact base, one past
  // the end, len overrun) are exercised, not just random misses.
  const std::span<const SegmentRule> rules = policy.rules_for(p.thread);
  if (!rules.empty() && rng.below(4) != 0) {
    const SegmentRule& rule = rules[rng.below(rules.size())];
    switch (rng.below(5)) {
      case 0: p.addr = rule.base; break;
      case 1: p.addr = rule.base + rule.size - 1; break;
      case 2: p.addr = rule.base + rule.size; break;
      case 3: p.addr = rule.base + rng.below(rule.size); break;
      default: p.addr = rule.base == 0 ? 0 : rule.base - 1; break;
    }
  } else {
    p.addr = rng.below(0x8000);
  }
  return p;
}

void expect_same_decision(const SecurityPolicy::Decision& ref,
                          const SecurityPolicy::Decision& fast,
                          const Probe& p) {
  EXPECT_EQ(ref.allowed, fast.allowed)
      << "addr=" << p.addr << " len=" << p.len;
  EXPECT_EQ(ref.violation, fast.violation)
      << "addr=" << p.addr << " len=" << p.len;
  EXPECT_EQ(ref.rule_index.has_value(), fast.rule_index.has_value());
  if (ref.rule_index.has_value() && fast.rule_index.has_value()) {
    EXPECT_EQ(*ref.rule_index, *fast.rule_index);
  }
}

TEST(CompiledPolicyIndex, MatchesLinearScanOnRandomizedPolicies) {
  util::Xoshiro256 rng(0xC0FFEEu);
  for (int round = 0; round < 100; ++round) {
    const SecurityPolicy policy = random_policy(rng);
    const CompiledPolicyIndex index(policy);
    EXPECT_EQ(index.rule_count(), policy.rule_count());
    for (int probe = 0; probe < 200; ++probe) {
      const Probe p = random_probe(rng, policy);
      expect_same_decision(
          policy.evaluate(p.op, p.addr, p.len, p.fmt, p.thread),
          index.evaluate(p.op, p.addr, p.len, p.fmt, p.thread), p);
    }
  }
}

TEST(CompiledPolicyIndex, LockdownAndEmptyPolicies) {
  const SecurityPolicy locked = make_lockdown_policy(7);
  const CompiledPolicyIndex locked_index(locked);
  EXPECT_TRUE(locked_index.lockdown());
  const auto d =
      locked_index.evaluate(bus::BusOp::kRead, 0x100, 4, bus::DataFormat::kWord);
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.violation, Violation::kPolicyLockdown);

  SecurityPolicy empty;
  const CompiledPolicyIndex empty_index(empty);
  const auto e =
      empty_index.evaluate(bus::BusOp::kRead, 0x100, 4, bus::DataFormat::kWord);
  EXPECT_FALSE(e.allowed);
  EXPECT_EQ(e.violation, Violation::kNoMatchingSegment);
}

TEST(CompiledPolicyIndex, OverlayFallbackMatchesReference) {
  util::Xoshiro256 rng(0xBEEFu);
  SecurityPolicy policy;
  policy.rules = random_rules(rng, 6);
  ThreadOverlay overlay;
  overlay.thread = 3;
  overlay.rules = random_rules(rng, 4);
  policy.thread_overlays.push_back(overlay);

  const CompiledPolicyIndex index(policy);
  for (bus::ThreadId thread : {0, 1, 2, 3, 4}) {
    for (int probe = 0; probe < 100; ++probe) {
      Probe p = random_probe(rng, policy);
      p.thread = thread;
      expect_same_decision(
          policy.evaluate(p.op, p.addr, p.len, p.fmt, p.thread),
          index.evaluate(p.op, p.addr, p.len, p.fmt, p.thread), p);
    }
  }
}

// Reconfiguration: every install() recompiles, and the SecurityBuilder's
// cached index follows the Configuration Memory's generation counter.
TEST(CompiledPolicyIndex, ReconfigurationRecompilesAndSbFollows) {
  util::Xoshiro256 rng(0x5EED5u);
  ConfigurationMemory config_mem;
  const FirewallId fw = 42;

  PolicyBuilder pb(1);
  pb.allow(0x1000, 0x100, RwAccess::kReadWrite);
  config_mem.install(fw, pb.build());

  SecurityBuilder sb(config_mem, fw);
  EXPECT_TRUE(
      sb.run_check(bus::BusOp::kWrite, 0x1000, 4, bus::DataFormat::kWord)
          .decision.allowed);

  // Lockdown swap must take effect on the very next check.
  config_mem.install(fw, make_lockdown_policy(1));
  EXPECT_EQ(sb.run_check(bus::BusOp::kWrite, 0x1000, 4, bus::DataFormat::kWord)
                .decision.violation,
            Violation::kPolicyLockdown);

  // A run of random reinstalls: the SB must always agree with a fresh
  // linear evaluation of the currently-installed policy.
  for (int round = 0; round < 30; ++round) {
    SecurityPolicy policy = random_policy(rng);
    const SecurityPolicy reference = policy;
    config_mem.install(fw, std::move(policy));
    for (int probe = 0; probe < 50; ++probe) {
      const Probe p = random_probe(rng, reference);
      const auto ref = reference.evaluate(p.op, p.addr, p.len, p.fmt, p.thread);
      const auto got =
          sb.run_check(p.op, p.addr, p.len, p.fmt, p.thread).decision;
      expect_same_decision(ref, got, p);
    }
  }
}

}  // namespace
}  // namespace secbus::core
