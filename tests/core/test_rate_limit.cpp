// Local Firewall DoS throttle: policy-legal traffic is still bounded per
// window, suppressing "overwhelming traffic" floods at the infected IP's
// own interface (Section III.A).
#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "core/local_firewall.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::core {
namespace {

struct RateLimitFixture : public ::testing::Test {
  void SetUp() override {
    config_mem.install(
        1, PolicyBuilder(1).allow(0x0, 0x1000, RwAccess::kReadWrite).build());
    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x1000, sid, "bram");
  }

  LocalFirewall& make_firewall(sim::Cycle window, std::uint32_t max_per_window) {
    LocalFirewall::Config cfg;
    cfg.rate_limit_window = window;
    cfg.rate_limit_max = max_per_window;
    fw = std::make_unique<LocalFirewall>("lf_throttled", 1, config_mem, log, cfg);
    fw->connect_bus(bus_obj->attach_master(0, "m0"));
    kernel.add(*fw);
    kernel.add(*bus_obj);
    return *fw;
  }

  // Pushes n writes and runs until all responses arrived.
  std::pair<std::uint64_t, std::uint64_t> blast(std::size_t n,
                                                sim::Cycle max_cycles = 20'000) {
    for (std::size_t i = 0; i < n; ++i) {
      fw->ip_side().request.push(bus::make_write(0, 0x100, {1, 2, 3, 4}));
    }
    kernel.run_until([&] { return fw->ip_side().response.size() == n; },
                     max_cycles);
    std::uint64_t ok = 0, limited = 0;
    while (!fw->ip_side().response.empty()) {
      const auto resp = *fw->ip_side().response.pop();
      if (resp.status == bus::TransStatus::kOk) {
        ++ok;
      } else {
        ++limited;
      }
    }
    return {ok, limited};
  }

  sim::SimKernel kernel;
  ConfigurationMemory config_mem;
  SecurityEventLog log;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
  std::unique_ptr<LocalFirewall> fw;
};

TEST_F(RateLimitFixture, DisabledByDefault) {
  LocalFirewall::Config cfg;  // window 0 = off
  fw = std::make_unique<LocalFirewall>("lf_open", 1, config_mem, log, cfg);
  fw->connect_bus(bus_obj->attach_master(0, "m0"));
  kernel.add(*fw);
  kernel.add(*bus_obj);
  const auto [ok, limited] = blast(20);
  EXPECT_EQ(ok, 20u);
  EXPECT_EQ(limited, 0u);
}

TEST_F(RateLimitFixture, ExcessTrafficDiscardedWithRateAlert) {
  // Checks serialize at 12 cycles each, so 10 back-to-back writes span
  // ~120+ cycles; with a 10k-cycle window and max 3, exactly 3 pass.
  make_firewall(10'000, 3);
  const auto [ok, limited] = blast(10);
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(limited, 7u);
  EXPECT_EQ(fw->stats().violation_count(Violation::kRateLimited), 7u);
  EXPECT_EQ(log.count_of(Violation::kRateLimited), 7u);
  EXPECT_EQ(bram.writes(), 3u);
}

TEST_F(RateLimitFixture, WindowRefillsOverTime) {
  make_firewall(500, 2);
  auto [ok1, limited1] = blast(4);
  EXPECT_EQ(ok1, 2u);
  EXPECT_EQ(limited1, 2u);
  // Advance past the window; the budget refills.
  kernel.run(600);
  auto [ok2, limited2] = blast(2);
  EXPECT_EQ(ok2, 2u);
  EXPECT_EQ(limited2, 0u);
}

TEST_F(RateLimitFixture, ViolationsDontConsumeBudget) {
  make_firewall(10'000, 2);
  // Two rule violations (unmapped segment) followed by two legal writes.
  fw->ip_side().request.push(bus::make_write(0, 0x4000, {1, 2, 3, 4}));
  fw->ip_side().request.push(bus::make_write(0, 0x4000, {1, 2, 3, 4}));
  fw->ip_side().request.push(bus::make_write(0, 0x100, {1, 2, 3, 4}));
  fw->ip_side().request.push(bus::make_write(0, 0x100, {1, 2, 3, 4}));
  kernel.run_until([&] { return fw->ip_side().response.size() == 4; }, 20'000);
  std::uint64_t ok = 0;
  while (!fw->ip_side().response.empty()) {
    if (fw->ip_side().response.pop()->status == bus::TransStatus::kOk) ++ok;
  }
  // Both legal writes fit the budget: the violations didn't count.
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(fw->stats().violation_count(Violation::kRateLimited), 0u);
}

TEST_F(RateLimitFixture, ResetClearsWindowState) {
  make_firewall(1'000'000, 1);
  (void)blast(2);  // consumes the single slot
  kernel.reset();
  const auto [ok, limited] = blast(1);
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(limited, 0u);
}

}  // namespace
}  // namespace secbus::core
