#include "core/reconfig.hpp"

#include <gtest/gtest.h>

namespace secbus::core {
namespace {

Alert make_alert(sim::Cycle cycle, FirewallId fw,
                 Violation v = Violation::kRwViolation) {
  Alert a;
  a.cycle = cycle;
  a.firewall = fw;
  a.firewall_name = "fw" + std::to_string(fw);
  a.violation = v;
  return a;
}

SecurityPolicy normal_policy(std::uint32_t spi) {
  return PolicyBuilder(spi).allow(0, 0x1000, RwAccess::kReadWrite).build();
}

struct ReconfigFixture : public ::testing::Test {
  void SetUp() override {
    config_mem.install(1, normal_policy(1));
    config_mem.install(2, normal_policy(2));
    PolicyReconfigurator::Config cfg;
    cfg.threshold = 3;
    cfg.window_cycles = 100;
    reconfig = std::make_unique<PolicyReconfigurator>(config_mem, log, cfg);
  }

  ConfigurationMemory config_mem;
  SecurityEventLog log;
  std::unique_ptr<PolicyReconfigurator> reconfig;
};

TEST_F(ReconfigFixture, LockdownAfterThresholdInWindow) {
  log.raise(make_alert(10, 1));
  log.raise(make_alert(20, 1));
  EXPECT_FALSE(reconfig->is_locked_down(1));
  log.raise(make_alert(30, 1));
  EXPECT_TRUE(reconfig->is_locked_down(1));
  EXPECT_TRUE(config_mem.policy(1).lockdown);
  ASSERT_EQ(reconfig->lockdowns().size(), 1u);
  EXPECT_EQ(reconfig->lockdowns()[0].firewall, 1u);
  EXPECT_EQ(reconfig->lockdowns()[0].cycle, 30u);
  EXPECT_EQ(reconfig->lockdowns()[0].alerts_in_window, 3u);
}

TEST_F(ReconfigFixture, SlidingWindowForgetOldAlerts) {
  log.raise(make_alert(10, 1));
  log.raise(make_alert(20, 1));
  // Third alert far outside the 100-cycle window: 10 and 20 expired.
  log.raise(make_alert(500, 1));
  EXPECT_FALSE(reconfig->is_locked_down(1));
  log.raise(make_alert(510, 1));
  log.raise(make_alert(520, 1));
  EXPECT_TRUE(reconfig->is_locked_down(1));
}

TEST_F(ReconfigFixture, FirewallsTrackedIndependently) {
  log.raise(make_alert(10, 1));
  log.raise(make_alert(11, 2));
  log.raise(make_alert(12, 1));
  log.raise(make_alert(13, 2));
  log.raise(make_alert(14, 1));
  EXPECT_TRUE(reconfig->is_locked_down(1));
  EXPECT_FALSE(reconfig->is_locked_down(2));
  EXPECT_FALSE(config_mem.policy(2).lockdown);
}

TEST_F(ReconfigFixture, ExemptFirewallNeverLocked) {
  reconfig->exempt(2);
  for (sim::Cycle c = 0; c < 10; ++c) log.raise(make_alert(c, 2));
  EXPECT_FALSE(reconfig->is_locked_down(2));
}

TEST_F(ReconfigFixture, ReleaseRestoresSavedPolicy) {
  for (sim::Cycle c = 0; c < 3; ++c) log.raise(make_alert(c, 1));
  ASSERT_TRUE(reconfig->is_locked_down(1));
  reconfig->release(1);
  EXPECT_FALSE(reconfig->is_locked_down(1));
  EXPECT_FALSE(config_mem.policy(1).lockdown);
  EXPECT_EQ(config_mem.policy(1).rule_count(), 1u);
}

TEST_F(ReconfigFixture, ReleaseUnknownFirewallIsNoop) {
  reconfig->release(99);  // must not crash or alter anything
  EXPECT_FALSE(reconfig->is_locked_down(99));
}

TEST_F(ReconfigFixture, AlertsAfterLockdownDontRetrigger) {
  for (sim::Cycle c = 0; c < 3; ++c) log.raise(make_alert(c, 1));
  ASSERT_EQ(reconfig->lockdowns().size(), 1u);
  // The now-locked firewall keeps raising lockdown alerts; no double action.
  for (sim::Cycle c = 4; c < 10; ++c) {
    log.raise(make_alert(c, 1, Violation::kPolicyLockdown));
  }
  EXPECT_EQ(reconfig->lockdowns().size(), 1u);
}

TEST_F(ReconfigFixture, DisabledResponderDoesNothing) {
  PolicyReconfigurator::Config cfg;
  cfg.enabled = false;
  cfg.threshold = 1;
  ConfigurationMemory mem2;
  SecurityEventLog log2;
  mem2.install(1, normal_policy(1));
  PolicyReconfigurator off(mem2, log2, cfg);
  log2.raise(make_alert(1, 1));
  EXPECT_FALSE(off.is_locked_down(1));
}

TEST(SecurityEventLog, CountersAndFirstCycle) {
  SecurityEventLog log;
  EXPECT_EQ(log.first_alert_cycle(), sim::kNeverCycle);
  log.raise(make_alert(5, 1, Violation::kRwViolation));
  log.raise(make_alert(9, 2, Violation::kIntegrityFailure));
  log.raise(make_alert(12, 1, Violation::kRwViolation));
  EXPECT_EQ(log.count(), 3u);
  EXPECT_EQ(log.count_for(1), 2u);
  EXPECT_EQ(log.count_of(Violation::kIntegrityFailure), 1u);
  EXPECT_EQ(log.first_alert_cycle(), 5u);
  log.clear();
  EXPECT_EQ(log.count(), 0u);
}

TEST(SecurityEventLog, ListenersInvokedInOrder) {
  SecurityEventLog log;
  std::vector<int> calls;
  log.subscribe([&calls](const Alert&) { calls.push_back(1); });
  log.subscribe([&calls](const Alert&) { calls.push_back(2); });
  log.raise(make_alert(1, 1));
  EXPECT_EQ(calls, (std::vector<int>{1, 2}));
}

TEST(AlertDescribe, MentionsKeyFields) {
  const Alert a = make_alert(77, 3, Violation::kFormatViolation);
  const std::string text = a.describe();
  EXPECT_NE(text.find("cycle=77"), std::string::npos);
  EXPECT_NE(text.find("format_violation"), std::string::npos);
  EXPECT_NE(text.find("fw3"), std::string::npos);
}

}  // namespace
}  // namespace secbus::core
