#include "core/security_builder.hpp"

#include <gtest/gtest.h>

namespace secbus::core {
namespace {

using bus::BusOp;
using bus::DataFormat;

ConfigurationMemory make_config_mem(std::size_t rules = 4) {
  ConfigurationMemory mem;
  PolicyBuilder b(1);
  for (std::size_t i = 0; i < rules; ++i) {
    b.allow(0x1000 * i, 0x800,
            i % 2 == 0 ? RwAccess::kReadWrite : RwAccess::kReadOnly,
            FormatMask::kAll, "seg" + std::to_string(i));
  }
  mem.install(5, b.build());
  return mem;
}

TEST(SecurityBuilder, PaperTableIILatency) {
  // Table II: security rules checking = 12 cycles at the calibrated policy.
  ConfigurationMemory mem = make_config_mem(4);
  SecurityBuilder sb(mem, 5);
  EXPECT_EQ(sb.check_latency(), 12u);
}

TEST(SecurityBuilder, LatencyScalesWithRuleCount) {
  // 2 extra rules per extra cycle beyond the 4-rule calibration point.
  for (const auto& [rules, expected] :
       std::vector<std::pair<std::size_t, sim::Cycle>>{
           {1, 12}, {4, 12}, {5, 13}, {6, 13}, {8, 14}, {16, 18}}) {
    ConfigurationMemory mem = make_config_mem(rules);
    SecurityBuilder sb(mem, 5);
    EXPECT_EQ(sb.check_latency(), expected) << "rules=" << rules;
  }
}

TEST(SecurityBuilder, AllowedCheckRunsAllThreeModules) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder sb(mem, 5);
  const auto result = sb.run_check(BusOp::kRead, 0x0010, 4, DataFormat::kWord);
  EXPECT_TRUE(result.decision.allowed);
  EXPECT_EQ(result.latency, 12u);
  EXPECT_EQ(sb.segment_stats().evaluations, 1u);
  EXPECT_EQ(sb.rwa_stats().evaluations, 1u);
  EXPECT_EQ(sb.adf_stats().evaluations, 1u);
  EXPECT_EQ(sb.checks_run(), 1u);
}

TEST(SecurityBuilder, SegmentMissShortCircuits) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder sb(mem, 5);
  const auto result =
      sb.run_check(BusOp::kRead, 0xFF00'0000, 4, DataFormat::kWord);
  EXPECT_FALSE(result.decision.allowed);
  EXPECT_EQ(result.decision.violation, Violation::kNoMatchingSegment);
  EXPECT_EQ(sb.segment_stats().violations, 1u);
  // Downstream checkers never ran.
  EXPECT_EQ(sb.rwa_stats().evaluations, 0u);
  EXPECT_EQ(sb.adf_stats().evaluations, 0u);
}

TEST(SecurityBuilder, RwViolationCounted) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder sb(mem, 5);
  const auto result =
      sb.run_check(BusOp::kWrite, 0x1010, 4, DataFormat::kWord);  // seg1 is RO
  EXPECT_EQ(result.decision.violation, Violation::kRwViolation);
  EXPECT_EQ(sb.rwa_stats().violations, 1u);
  EXPECT_EQ(sb.adf_stats().evaluations, 0u);
}

TEST(SecurityBuilder, PolicyUpdateTakesEffectNextCheck) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder sb(mem, 5);
  EXPECT_TRUE(sb.run_check(BusOp::kRead, 0x0010, 4, DataFormat::kWord)
                  .decision.allowed);
  mem.install(5, make_lockdown_policy(5));
  const auto after = sb.run_check(BusOp::kRead, 0x0010, 4, DataFormat::kWord);
  EXPECT_FALSE(after.decision.allowed);
  EXPECT_EQ(after.decision.violation, Violation::kPolicyLockdown);
}

TEST(SecurityBuilder, ResetStatsClearsCounters) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder sb(mem, 5);
  (void)sb.run_check(BusOp::kRead, 0x0010, 4, DataFormat::kWord);
  sb.reset_stats();
  EXPECT_EQ(sb.checks_run(), 0u);
  EXPECT_EQ(sb.segment_stats().evaluations, 0u);
}

TEST(ConfigurationMemory, GenerationBumpsOnInstall) {
  ConfigurationMemory mem;
  EXPECT_EQ(mem.generation(), 0u);
  mem.install(1, make_lockdown_policy(1));
  EXPECT_EQ(mem.generation(), 1u);
  mem.install(1, make_lockdown_policy(1));
  EXPECT_EQ(mem.generation(), 2u);
  EXPECT_TRUE(mem.has_policy(1));
  EXPECT_FALSE(mem.has_policy(2));
}

TEST(ConfigurationMemory, TotalRulesSumsPolicies) {
  ConfigurationMemory mem;
  mem.install(1, PolicyBuilder(1).allow(0, 64, RwAccess::kReadWrite).build());
  mem.install(2, PolicyBuilder(2)
                     .allow(0, 64, RwAccess::kReadWrite)
                     .allow(0x100, 64, RwAccess::kReadOnly)
                     .build());
  EXPECT_EQ(mem.total_rules(), 3u);
  EXPECT_EQ(mem.policy_count(), 2u);
}

TEST(ConfigurationMemoryDeathTest, MissingPolicyAborts) {
  ConfigurationMemory mem;
  EXPECT_DEATH((void)mem.policy(42), "no security policy");
}

TEST(SecurityBuilderDeathTest, BudgetSmallerThanFetchAborts) {
  ConfigurationMemory mem = make_config_mem();
  SecurityBuilder::Config cfg;
  cfg.base_check_cycles = 1;  // below the 2-cycle SP fetch
  EXPECT_DEATH(SecurityBuilder(mem, 5, cfg), "budget");
}

}  // namespace
}  // namespace secbus::core
