// Thread-specific security — the paper's Section-VI perspective ("each
// thread has its own security level"), implemented as per-thread rule
// overlays inside a Security Policy.
#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "core/local_firewall.hpp"
#include "core/security_builder.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::core {
namespace {

using bus::BusOp;
using bus::DataFormat;

// Base rules: RW everywhere in [0, 0x1000). Thread 1 overlay: read-only,
// and only the lower half. Thread 2 has no overlay (falls back to base).
SecurityPolicy make_thread_policy() {
  return PolicyBuilder(11)
      .allow(0x0000, 0x1000, RwAccess::kReadWrite, FormatMask::kAll, "base")
      .for_thread(1)
      .allow(0x0000, 0x800, RwAccess::kReadOnly, FormatMask::k32, "t1-ro")
      .build();
}

TEST(ThreadPolicy, RulesForSelectsOverlay) {
  const SecurityPolicy p = make_thread_policy();
  EXPECT_EQ(p.rules_for(0).size(), 1u);
  EXPECT_EQ(p.rules_for(0)[0].label, "base");
  EXPECT_EQ(p.rules_for(1)[0].label, "t1-ro");
  EXPECT_EQ(p.rules_for(2)[0].label, "base");  // fallback
  EXPECT_EQ(p.rule_count(), 2u);               // base + overlay rules
}

TEST(ThreadPolicy, EvaluatePerThread) {
  const SecurityPolicy p = make_thread_policy();
  // Thread 0 writes anywhere.
  EXPECT_TRUE(p.evaluate(BusOp::kWrite, 0x900, 4, DataFormat::kWord, 0).allowed);
  // Thread 1 cannot write at all.
  const auto t1_write = p.evaluate(BusOp::kWrite, 0x100, 4, DataFormat::kWord, 1);
  EXPECT_FALSE(t1_write.allowed);
  EXPECT_EQ(t1_write.violation, Violation::kRwViolation);
  // Thread 1 cannot touch the upper half.
  const auto t1_high = p.evaluate(BusOp::kRead, 0x900, 4, DataFormat::kWord, 1);
  EXPECT_FALSE(t1_high.allowed);
  EXPECT_EQ(t1_high.violation, Violation::kNoMatchingSegment);
  // Thread 1 reads the lower half at word width.
  EXPECT_TRUE(p.evaluate(BusOp::kRead, 0x100, 4, DataFormat::kWord, 1).allowed);
  // ... but not at byte width (overlay ADF).
  EXPECT_EQ(p.evaluate(BusOp::kRead, 0x100, 1, DataFormat::kByte, 1).violation,
            Violation::kFormatViolation);
  // Thread 2 falls back to the permissive base rules.
  EXPECT_TRUE(p.evaluate(BusOp::kWrite, 0x900, 4, DataFormat::kWord, 2).allowed);
}

TEST(ThreadPolicy, DefaultThreadZeroMatchesLegacyEvaluate) {
  const SecurityPolicy p = make_thread_policy();
  const auto explicit0 = p.evaluate(BusOp::kRead, 0x10, 4, DataFormat::kWord, 0);
  const auto implicit = p.evaluate(BusOp::kRead, 0x10, 4, DataFormat::kWord);
  EXPECT_EQ(explicit0.allowed, implicit.allowed);
}

TEST(ThreadPolicy, OverlayForThreadZeroOverridesBase) {
  const SecurityPolicy p =
      PolicyBuilder(12)
          .allow(0x0, 0x1000, RwAccess::kReadWrite)
          .for_thread(0)
          .allow(0x0, 0x100, RwAccess::kReadOnly)
          .build();
  // Thread 0 now uses its overlay, not the base rules.
  EXPECT_FALSE(p.evaluate(BusOp::kWrite, 0x10, 4, DataFormat::kWord, 0).allowed);
  EXPECT_TRUE(p.evaluate(BusOp::kWrite, 0x10, 4, DataFormat::kWord, 1).allowed);
}

TEST(ThreadPolicy, ForBaseRulesSwitchesBack) {
  const SecurityPolicy p = PolicyBuilder(13)
                               .for_thread(3)
                               .allow(0x0, 0x100, RwAccess::kReadOnly)
                               .for_base_rules()
                               .allow(0x0, 0x1000, RwAccess::kReadWrite)
                               .build();
  EXPECT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.thread_overlays.size(), 1u);
  EXPECT_TRUE(p.evaluate(BusOp::kWrite, 0x500, 4, DataFormat::kWord, 0).allowed);
  EXPECT_FALSE(p.evaluate(BusOp::kWrite, 0x500, 4, DataFormat::kWord, 3).allowed);
}

TEST(ThreadPolicyDeathTest, DuplicateOverlayAborts) {
  PolicyBuilder b(14);
  b.for_thread(1).allow(0x0, 0x100, RwAccess::kReadOnly);
  EXPECT_DEATH(b.for_thread(1), "duplicate");
}

TEST(ThreadPolicyDeathTest, OverlappingOverlayRulesAbort) {
  PolicyBuilder b(15);
  b.for_thread(1)
      .allow(0x0, 0x100, RwAccess::kReadOnly)
      .allow(0x80, 0x100, RwAccess::kReadWrite);
  EXPECT_DEATH((void)b.build(), "disjoint");
}

TEST(ThreadPolicy, SecurityBuilderRoutesThread) {
  ConfigurationMemory mem;
  mem.install(5, make_thread_policy());
  SecurityBuilder sb(mem, 5);
  EXPECT_TRUE(
      sb.run_check(BusOp::kWrite, 0x900, 4, DataFormat::kWord, 0).decision.allowed);
  EXPECT_FALSE(
      sb.run_check(BusOp::kWrite, 0x900, 4, DataFormat::kWord, 1).decision.allowed);
}

// End-to-end: the same firewall admits thread 0's write and discards the
// identical write from thread 1.
TEST(ThreadPolicy, FirewallEnforcesPerThread) {
  sim::SimKernel kernel;
  ConfigurationMemory config_mem;
  SecurityEventLog log;
  config_mem.install(1, make_thread_policy());

  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  bus::SystemBus bus("bus");
  const auto sid = bus.add_slave(bram);
  bus.map_region(0x0000, 0x1000, sid, "bram");
  LocalFirewall fw("lf_threads", 1, config_mem, log);
  fw.connect_bus(bus.attach_master(0, "m0"));
  kernel.add(fw);
  kernel.add(bus);

  auto submit = [&](bus::ThreadId thread) {
    bus::BusTransaction t = bus::make_write(0, 0x100, {1, 2, 3, 4});
    t.thread = thread;
    t.issued_at = kernel.now();
    fw.ip_side().request.push(std::move(t));
    kernel.run_until([&] { return !fw.ip_side().response.empty(); }, 500);
    return *fw.ip_side().response.pop();
  };

  EXPECT_EQ(submit(0).status, bus::TransStatus::kOk);
  EXPECT_EQ(submit(1).status, bus::TransStatus::kSecurityViolation);
  EXPECT_EQ(log.count(), 1u);
  EXPECT_EQ(bram.writes(), 1u);  // only thread 0's write landed
}

}  // namespace
}  // namespace secbus::core
