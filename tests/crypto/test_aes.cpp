#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "util/hexdump.hpp"
#include "util/rng.hpp"

namespace secbus::crypto {
namespace {

using util::from_hex;
using util::to_hex;

Aes128Key key_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  Aes128Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

AesBlock block_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  AesBlock block{};
  std::copy(bytes.begin(), bytes.end(), block.begin());
  return block;
}

TEST(GaloisField, MultiplicationKnownValues) {
  // FIPS-197 Section 4.2 example: {57} x {83} = {c1}.
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xC1);
  // {57} x {13} = {fe} (FIPS-197 Section 4.2.1).
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xFE);
  EXPECT_EQ(gf_mul(0x01, 0xAB), 0xAB);
  EXPECT_EQ(gf_mul(0x00, 0xFF), 0x00);
}

TEST(GaloisField, InverseIsInverse) {
  EXPECT_EQ(gf_inv(0), 0);
  for (unsigned v = 1; v < 256; ++v) {
    const auto x = static_cast<std::uint8_t>(v);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "failed for " << v;
  }
}

TEST(Sbox, KnownEntries) {
  // Spot values from the FIPS-197 S-box table.
  EXPECT_EQ(detail::kSbox[0x00], 0x63);
  EXPECT_EQ(detail::kSbox[0x01], 0x7C);
  EXPECT_EQ(detail::kSbox[0x53], 0xED);
  EXPECT_EQ(detail::kSbox[0xFF], 0x16);
}

TEST(Sbox, InverseSboxInverts) {
  for (unsigned v = 0; v < 256; ++v) {
    EXPECT_EQ(detail::kInvSbox[detail::kSbox[v]], v);
  }
}

TEST(Aes128, Fips197KeyExpansion) {
  // FIPS-197 Appendix A.1 for key 2b7e1516...
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto rk = aes.round_keys();
  ASSERT_EQ(rk.size(), 176u);
  // w[4..7] after the first expansion step.
  EXPECT_EQ(to_hex(rk.subspan(16, 4)), "a0fafe17");
  EXPECT_EQ(to_hex(rk.subspan(20, 4)), "88542cb1");
  // Final round key w[40..43].
  EXPECT_EQ(to_hex(rk.subspan(160, 16)), "d014f9a8c9ee2589e13f0cc8b6630ca6");
}

TEST(Aes128, Fips197AppendixBEncrypt) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const AesBlock ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex({ct.data(), ct.size()}), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Fips197AppendixCEncryptDecrypt) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const AesBlock pt = block_from_hex("00112233445566778899aabbccddeeff");
  const AesBlock ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex({ct.data(), ct.size()}), "69c4e0d86a7b0430d8cdb78070b4c55a");
  const AesBlock back = aes.decrypt(ct);
  EXPECT_EQ(back, pt);
}

TEST(Aes128, RekeyChangesOutput) {
  Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const AesBlock pt = block_from_hex("00112233445566778899aabbccddeeff");
  const AesBlock ct1 = aes.encrypt(pt);
  aes.rekey(key_from_hex("ffeeddccbbaa99887766554433221100"));
  const AesBlock ct2 = aes.encrypt(pt);
  EXPECT_NE(ct1, ct2);
  const AesBlock back = aes.decrypt(ct2);
  EXPECT_EQ(back, pt);
}

TEST(Aes128, BlockOpCounterTracksWork) {
  Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(aes.block_ops(), 0u);
  const AesBlock pt{};
  (void)aes.encrypt(pt);
  (void)aes.encrypt(pt);
  (void)aes.decrypt(pt);
  EXPECT_EQ(aes.block_ops(), 3u);
  aes.reset_block_ops();
  EXPECT_EQ(aes.block_ops(), 0u);
}

// Property sweep: decrypt(encrypt(x)) == x for random keys and blocks.
class AesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesRoundTrip, RandomKeyAndBlocks) {
  util::Xoshiro256 rng(GetParam());
  Aes128Key key{};
  rng.fill(std::span<std::uint8_t>(key.data(), key.size()));
  const Aes128 aes(key);
  for (int i = 0; i < 64; ++i) {
    AesBlock pt{};
    rng.fill(std::span<std::uint8_t>(pt.data(), pt.size()));
    const AesBlock ct = aes.encrypt(pt);
    EXPECT_NE(ct, pt);  // astronomically unlikely to be a fixed point
    EXPECT_EQ(aes.decrypt(ct), pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Aes128, AvalancheOneBitFlip) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  AesBlock pt{};
  const AesBlock ct1 = aes.encrypt(pt);
  pt[0] ^= 0x01;
  const AesBlock ct2 = aes.encrypt(pt);
  int differing_bits = 0;
  for (std::size_t i = 0; i < ct1.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(ct1[i] ^ ct2[i]));
  }
  // Expect roughly half of 128 bits to flip; 30+ is a loose sanity bound.
  EXPECT_GT(differing_bits, 30);
}

}  // namespace
}  // namespace secbus::crypto
