// Differential validation of the two AES datapaths: the 32-bit T-table fast
// path must produce bit-identical blocks to the byte-wise FIPS-197 reference
// on the standard vectors and on randomized keys/blocks, in both directions.
#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/hexdump.hpp"
#include "util/rng.hpp"

namespace secbus::crypto {
namespace {

using util::from_hex;

Aes128Key key_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  Aes128Key key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

AesBlock block_from_hex(const std::string& hex) {
  const auto bytes = from_hex(hex);
  AesBlock block{};
  std::copy(bytes.begin(), bytes.end(), block.begin());
  return block;
}

AesBlock random_block(util::Xoshiro256& rng) {
  AesBlock block;
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.below(256));
  return block;
}

// FIPS-197 Appendix B: the canonical 128-bit example vector.
const char* kFipsKey = "2b7e151628aed2a6abf7158809cf4f3c";
const char* kFipsPlain = "3243f6a8885a308d313198a2e0370734";
const char* kFipsCipher = "3925841d02dc09fbdc118597196a0b32";

// FIPS-197 Appendix C.1: sequential key/plaintext example.
const char* kAppCKey = "000102030405060708090a0b0c0d0e0f";
const char* kAppCPlain = "00112233445566778899aabbccddeeff";
const char* kAppCCipher = "69c4e0d86a7b0430d8cdb78070b4c55a";

class AesImplVectors : public ::testing::TestWithParam<AesImpl> {};

TEST_P(AesImplVectors, Fips197AppendixB) {
  Aes128 aes(key_from_hex(kFipsKey));
  aes.set_impl(GetParam());
  EXPECT_EQ(aes.encrypt(block_from_hex(kFipsPlain)), block_from_hex(kFipsCipher));
  EXPECT_EQ(aes.decrypt(block_from_hex(kFipsCipher)), block_from_hex(kFipsPlain));
}

TEST_P(AesImplVectors, Fips197AppendixC1) {
  Aes128 aes(key_from_hex(kAppCKey));
  aes.set_impl(GetParam());
  EXPECT_EQ(aes.encrypt(block_from_hex(kAppCPlain)), block_from_hex(kAppCCipher));
  EXPECT_EQ(aes.decrypt(block_from_hex(kAppCCipher)), block_from_hex(kAppCPlain));
}

TEST_P(AesImplVectors, RekeyRevalidates) {
  Aes128 aes(key_from_hex(kAppCKey));
  aes.set_impl(GetParam());
  aes.rekey(key_from_hex(kFipsKey));
  EXPECT_EQ(aes.encrypt(block_from_hex(kFipsPlain)), block_from_hex(kFipsCipher));
}

// Every datapath this host can run, AES-NI included: the FIPS vectors above
// are the hardware path's ground truth, not just the portable ones'.
std::vector<AesImpl> supported_impls() {
  std::vector<AesImpl> impls{AesImpl::kTTable, AesImpl::kScalar};
  if (aes_impl_supported(AesImpl::kAesni)) impls.push_back(AesImpl::kAesni);
  return impls;
}

INSTANTIATE_TEST_SUITE_P(AllImpls, AesImplVectors,
                         ::testing::ValuesIn(supported_impls()),
                         [](const auto& info) {
                           switch (info.param) {
                             case AesImpl::kTTable: return "ttable";
                             case AesImpl::kScalar: return "scalar";
                             case AesImpl::kAesni: return "aesni";
                           }
                           return "unknown";
                         });

TEST(AesTTableDifferential, RandomizedBlocksMatchScalar) {
  util::Xoshiro256 rng(0xA25F00D5u);
  for (int trial = 0; trial < 200; ++trial) {
    Aes128Key key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
    Aes128 ttable(key);
    ttable.set_impl(AesImpl::kTTable);
    Aes128 scalar(key);
    scalar.set_impl(AesImpl::kScalar);
    for (int block = 0; block < 8; ++block) {
      const AesBlock plain = random_block(rng);
      const AesBlock ct_fast = ttable.encrypt(plain);
      const AesBlock ct_ref = scalar.encrypt(plain);
      EXPECT_EQ(ct_fast, ct_ref) << "trial " << trial;
      EXPECT_EQ(ttable.decrypt(ct_fast), plain) << "trial " << trial;
      EXPECT_EQ(scalar.decrypt(ct_fast), plain) << "trial " << trial;
      // Decrypt of arbitrary (non-ciphertext) blocks must agree too: the
      // attack benches decrypt tampered lines.
      const AesBlock garbage = random_block(rng);
      EXPECT_EQ(ttable.decrypt(garbage), scalar.decrypt(garbage));
    }
  }
}

TEST(AesTTableDifferential, BlockOpsCountedOnBothPaths) {
  Aes128 aes(key_from_hex(kFipsKey));
  aes.set_impl(AesImpl::kTTable);
  (void)aes.encrypt(block_from_hex(kFipsPlain));
  EXPECT_EQ(aes.block_ops(), 1u);
  aes.set_impl(AesImpl::kScalar);
  (void)aes.decrypt(block_from_hex(kFipsCipher));
  EXPECT_EQ(aes.block_ops(), 2u);
}

}  // namespace
}  // namespace secbus::crypto
