// Differential fuzz across the crypto backends: seeded-random keys, nonces,
// versions, lengths and alignments cross-check the accel (AES-NI/SHA-NI),
// T-table and scalar datapaths against each other and against independent
// in-test references. The batched CTR paths are additionally validated
// against a byte-wise reimplementation of the original counter increment,
// so the word-level hoist can never silently change keystream semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.hpp"
#include "crypto/aes_modes.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"

namespace secbus::crypto {
namespace {

std::vector<AesImpl> supported_aes_impls() {
  std::vector<AesImpl> impls{AesImpl::kTTable, AesImpl::kScalar};
  if (aes_impl_supported(AesImpl::kAesni)) impls.push_back(AesImpl::kAesni);
  return impls;
}

std::vector<ShaImpl> supported_sha_impls() {
  std::vector<ShaImpl> impls{ShaImpl::kPortable};
  if (sha_impl_supported(ShaImpl::kShaNi)) impls.push_back(ShaImpl::kShaNi);
  return impls;
}

Aes128Key random_key(util::Xoshiro256& rng) {
  Aes128Key key;
  rng.fill(key);
  return key;
}

AesBlock random_block(util::Xoshiro256& rng) {
  AesBlock block;
  rng.fill(block);
  return block;
}

// Lengths that hit every tail shape: empty, single byte, one-off-block,
// exact blocks, and the odd sizes the LCF never produces but CTR must
// still handle (the ISSUE's "non-multiple-of-16 and single-byte tails").
constexpr std::size_t kLengths[] = {0,  1,  15, 16, 17,  31,  32,
                                    33, 63, 64, 65, 100, 255, 256};

// Independent CTR reference: single-block encryption with the pre-batching
// byte-wise counter increment (big-endian bytes 15..12, carry never
// propagating past byte 12 — i.e. the low 32 bits wrap mod 2^32).
void ctr_reference(const Aes128& aes, const AesBlock& initial_counter,
                   std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out) {
  AesBlock counter = initial_counter;
  std::size_t off = 0;
  while (off < in.size()) {
    const AesBlock keystream = aes.encrypt(counter);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) {
      out[off + i] = in[off + i] ^ keystream[i];
    }
    off += take;
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
}

class AesBackendDiff : public ::testing::TestWithParam<AesImpl> {
 protected:
  // Same key, two contexts: the datapath under test and the byte-wise
  // FIPS-197 reference.
  void rekey(const Aes128Key& key) {
    tested_.rekey(key);
    tested_.set_impl(GetParam());
    reference_.rekey(key);
    reference_.set_impl(AesImpl::kScalar);
  }

  Aes128 tested_{Aes128Key{}};
  Aes128 reference_{Aes128Key{}};
};

TEST_P(AesBackendDiff, EcbMatchesScalarOnRandomBuffers) {
  util::Xoshiro256 rng(0xECB0'0001u);
  for (int trial = 0; trial < 40; ++trial) {
    rekey(random_key(rng));
    const std::size_t nblocks = 1 + rng.below(24);
    std::vector<std::uint8_t> plain(nblocks * 16);
    rng.fill(plain);
    std::vector<std::uint8_t> ct_fast(plain.size());
    std::vector<std::uint8_t> ct_ref(plain.size());
    ecb_encrypt(tested_, plain, ct_fast);
    ecb_encrypt(reference_, plain, ct_ref);
    EXPECT_EQ(ct_fast, ct_ref) << "trial " << trial;

    std::vector<std::uint8_t> back(plain.size());
    ecb_decrypt(tested_, ct_fast, back);
    EXPECT_EQ(back, plain) << "trial " << trial;
  }
}

TEST_P(AesBackendDiff, EcbInPlaceAliasing) {
  util::Xoshiro256 rng(0xECB0'0002u);
  rekey(random_key(rng));
  std::vector<std::uint8_t> buf(8 * 16);
  rng.fill(buf);
  const std::vector<std::uint8_t> plain = buf;
  ecb_encrypt(tested_, buf, buf);
  std::vector<std::uint8_t> expected(plain.size());
  ecb_encrypt(reference_, plain, expected);
  EXPECT_EQ(buf, expected);
  ecb_decrypt(tested_, buf, buf);
  EXPECT_EQ(buf, plain);
}

TEST_P(AesBackendDiff, CbcMatchesScalarAndRoundTrips) {
  util::Xoshiro256 rng(0xCBC0'0001u);
  for (int trial = 0; trial < 40; ++trial) {
    rekey(random_key(rng));
    const AesBlock iv = random_block(rng);
    const std::size_t nblocks = 1 + rng.below(24);
    std::vector<std::uint8_t> plain(nblocks * 16);
    rng.fill(plain);

    std::vector<std::uint8_t> ct_fast(plain.size());
    std::vector<std::uint8_t> ct_ref(plain.size());
    cbc_encrypt(tested_, iv, plain, ct_fast);
    cbc_encrypt(reference_, iv, plain, ct_ref);
    EXPECT_EQ(ct_fast, ct_ref) << "trial " << trial;

    // Decrypt is the batched direction — check it against the reference
    // decrypt AND the original plaintext, including in place.
    std::vector<std::uint8_t> back(plain.size());
    cbc_decrypt(tested_, iv, ct_fast, back);
    EXPECT_EQ(back, plain) << "trial " << trial;
    cbc_decrypt(tested_, iv, ct_fast, ct_fast);  // aliasing
    EXPECT_EQ(ct_fast, plain) << "trial " << trial;
  }
}

TEST_P(AesBackendDiff, CtrMatchesByteWiseReferenceAtAllTails) {
  util::Xoshiro256 rng(0xC720'0001u);
  CtrScratch scratch;
  for (const std::size_t len : kLengths) {
    rekey(random_key(rng));
    const AesBlock counter = random_block(rng);
    // Unaligned source: offset the data inside a bigger buffer.
    std::vector<std::uint8_t> backing(len + 3);
    rng.fill(backing);
    const std::span<const std::uint8_t> in(backing.data() + 3, len);

    std::vector<std::uint8_t> expected(len);
    ctr_reference(reference_, counter, in, expected);

    std::vector<std::uint8_t> out(len);
    ctr_xcrypt(tested_, counter, in, out);
    EXPECT_EQ(out, expected) << "len " << len << " (stack-chunked path)";

    std::vector<std::uint8_t> out_scratch(len);
    ctr_xcrypt(tested_, counter, in, out_scratch, scratch);
    EXPECT_EQ(out_scratch, expected) << "len " << len << " (scratch path)";

    // CTR is an involution: transforming again restores the input.
    std::vector<std::uint8_t> back(len);
    ctr_xcrypt(tested_, counter,
               std::span<const std::uint8_t>(out.data(), out.size()), back,
               scratch);
    EXPECT_TRUE(std::equal(back.begin(), back.end(), in.begin()))
        << "len " << len;
  }
}

TEST_P(AesBackendDiff, CtrCounterWrapsLow32Bits) {
  util::Xoshiro256 rng(0xC720'0002u);
  rekey(random_key(rng));
  // Counters whose low word is about to wrap: the batched word-level
  // increment must reproduce the byte-wise semantics (no carry into byte
  // 11) exactly across the 2^32 boundary.
  for (const std::uint32_t low : {0xFFFFFFFFu, 0xFFFFFFFEu, 0xFFFFFFF9u}) {
    AesBlock counter = random_block(rng);
    counter[12] = static_cast<std::uint8_t>(low >> 24);
    counter[13] = static_cast<std::uint8_t>(low >> 16);
    counter[14] = static_cast<std::uint8_t>(low >> 8);
    counter[15] = static_cast<std::uint8_t>(low);

    std::vector<std::uint8_t> in(16 * 20 + 5);
    rng.fill(in);
    std::vector<std::uint8_t> expected(in.size());
    ctr_reference(reference_, counter, in, expected);
    std::vector<std::uint8_t> out(in.size());
    ctr_xcrypt(tested_, counter, in, out);
    EXPECT_EQ(out, expected) << "low word 0x" << std::hex << low;
  }
}

TEST_P(AesBackendDiff, MemoryXcryptLineMatchesPerBlockReference) {
  util::Xoshiro256 rng(0x11FE'0001u);
  CtrScratch scratch;
  for (int trial = 0; trial < 30; ++trial) {
    rekey(random_key(rng));
    const auto nonce = static_cast<std::uint32_t>(rng.next());
    const auto version = static_cast<std::uint32_t>(rng.next());
    // Line addresses near the 2^32 block boundary too: the tweak's address
    // field is 64-bit, stepping by 16 per block.
    const std::uint64_t line_addr =
        (trial % 3 == 0) ? 0xFFFFFFF0ull + rng.below(64)
                         : rng.next() & ~0xFull;
    const std::size_t nblocks = 1 + rng.below(16);
    std::vector<std::uint8_t> plain(nblocks * 16);
    rng.fill(plain);

    // Reference: one memory_xcrypt per 16-byte block at stepped addresses,
    // all through the scalar datapath.
    std::vector<std::uint8_t> expected(plain.size());
    for (std::size_t b = 0; b < nblocks; ++b) {
      memory_xcrypt(reference_, nonce, line_addr + 16 * b, version,
                    std::span<const std::uint8_t>(plain.data() + 16 * b, 16),
                    std::span<std::uint8_t>(expected.data() + 16 * b, 16));
    }

    std::vector<std::uint8_t> out(plain.size());
    memory_xcrypt_line(tested_, nonce, line_addr, version, plain, out);
    EXPECT_EQ(out, expected) << "trial " << trial << " (stack-chunked path)";

    std::vector<std::uint8_t> out_scratch(plain.size());
    memory_xcrypt_line(tested_, nonce, line_addr, version, plain, out_scratch,
                       scratch);
    EXPECT_EQ(out_scratch, expected) << "trial " << trial << " (scratch path)";

    // In-place, as the Confidentiality Core drives it.
    std::vector<std::uint8_t> inplace = plain;
    memory_xcrypt_line(tested_, nonce, line_addr, version, inplace, inplace,
                       scratch);
    EXPECT_EQ(inplace, expected) << "trial " << trial << " (aliasing)";
  }
}

INSTANTIATE_TEST_SUITE_P(AllImpls, AesBackendDiff,
                         ::testing::ValuesIn(supported_aes_impls()),
                         [](const auto& info) {
                           switch (info.param) {
                             case AesImpl::kTTable: return "ttable";
                             case AesImpl::kScalar: return "scalar";
                             case AesImpl::kAesni: return "aesni";
                           }
                           return "unknown";
                         });

TEST(ShaBackendDiff, AllImplsAgreeOnRandomLengths) {
  const auto impls = supported_sha_impls();
  util::Xoshiro256 rng(0x5AA5'0001u);
  for (std::size_t len = 0; len <= 300; ++len) {
    std::vector<std::uint8_t> data(len + 1);  // +1: non-null data() at len==0
    rng.fill(data);
    const std::span<const std::uint8_t> msg(data.data(), len);

    Sha256 ref;
    ref.set_impl(ShaImpl::kPortable);
    ref.update(msg);
    const Sha256Digest expected = ref.finalize();

    for (const ShaImpl impl : impls) {
      Sha256 ctx;
      ctx.set_impl(impl);
      ctx.update(msg);
      EXPECT_EQ(ctx.finalize(), expected)
          << "len " << len << " impl " << to_string(impl);
      EXPECT_EQ(Sha256::digest_parts({msg}, impl), expected)
          << "len " << len << " impl " << to_string(impl) << " (fused)";
    }
  }
}

TEST(ShaBackendDiff, DigestPartsSplitsAgreeAcrossImpls) {
  util::Xoshiro256 rng(0x5AA5'0002u);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t len = rng.below(280);
    std::vector<std::uint8_t> data(len + 1);
    rng.fill(data);
    const std::size_t cut = rng.below(len + 1);
    const std::span<const std::uint8_t> head(data.data(), cut);
    const std::span<const std::uint8_t> tail(data.data() + cut, len - cut);

    const Sha256Digest expected =
        Sha256::digest(std::span<const std::uint8_t>(data.data(), len));
    for (const ShaImpl impl : supported_sha_impls()) {
      EXPECT_EQ(Sha256::digest_parts({head, tail}, impl), expected)
          << "trial " << trial << " impl " << to_string(impl);
    }
  }
}

TEST(HmacBackendDiff, AllImplsAgreeIncludingLongKeys) {
  util::Xoshiro256 rng(0x4A4C'0001u);
  // Key lengths straddling the SHA-256 block size: >64 triggers the
  // hash-the-key path in rekey().
  for (const std::size_t key_len : {1u, 16u, 32u, 63u, 64u, 65u, 200u}) {
    std::vector<std::uint8_t> key(key_len);
    rng.fill(key);
    const std::size_t msg_len = rng.below(300);
    std::vector<std::uint8_t> msg(msg_len + 1);
    rng.fill(msg);
    const std::span<const std::uint8_t> msg_span(msg.data(), msg_len);

    HmacSha256 ref(key);
    ref.set_impl(ShaImpl::kPortable);
    const Sha256Digest expected = ref.mac(msg_span);

    for (const ShaImpl impl : supported_sha_impls()) {
      HmacSha256 mac(key);
      mac.set_impl(impl);
      EXPECT_EQ(mac.mac(msg_span), expected)
          << "key_len " << key_len << " impl " << to_string(impl);
      mac.start();
      mac.update(msg_span);
      EXPECT_EQ(mac.finish(), expected)
          << "key_len " << key_len << " impl " << to_string(impl)
          << " (streaming)";
    }
  }
}

// End-to-end: a full ciphered+integrity simulation must produce bit-identical
// results no matter which backend drives the crypto substrate (ISSUE
// acceptance: "byte-identical SocResults across backends").
class BackendSocEquivalence : public ::testing::Test {
 protected:
  ~BackendSocEquivalence() override {
    set_backend_for_testing(original_);  // restore for later tests in this TU
  }
  const BackendKind original_ = active_backend().kind;
};

TEST_F(BackendSocEquivalence, TinyConfigBitIdenticalAcrossBackends) {
  std::vector<BackendKind> kinds{BackendKind::kPortable, BackendKind::kScalar};
  if (aes_impl_supported(AesImpl::kAesni) ||
      sha_impl_supported(ShaImpl::kShaNi)) {
    kinds.push_back(BackendKind::kAccel);
  }

  struct Digest {
    sim::Cycle cycles;
    std::uint64_t ok;
    std::uint64_t bytes;
    double latency;
    std::uint64_t lcf_lines;
    bool operator==(const Digest&) const = default;
  };

  std::vector<Digest> digests;
  for (const BackendKind kind : kinds) {
    set_backend_for_testing(kind);
    soc::SocConfig cfg = soc::tiny_test_config();
    soc::Soc soc(cfg);  // constructed after the switch: captures the backend
    const soc::SocResults r = soc.run(3'000'000);
    ASSERT_TRUE(r.completed) << "backend " << to_string(kind);
    digests.push_back({r.cycles, r.transactions_ok, r.bytes_moved,
                       r.avg_access_latency,
                       soc.lcf() != nullptr ? soc.lcf()->stats().lines_encrypted
                                            : 0});
  }
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0])
        << to_string(kinds[i]) << " vs " << to_string(kinds[0]);
  }
}

}  // namespace
}  // namespace secbus::crypto
