#include "crypto/hash_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace secbus::crypto {
namespace {

constexpr std::size_t kLeaves = 16;
constexpr std::size_t kBlock = 32;
constexpr std::uint64_t kBase = 0x8000'0000;

HashTree make_tree() {
  return HashTree(HashTree::Config{kLeaves, kBlock, kBase});
}

std::vector<std::uint8_t> block_pattern(std::uint8_t salt) {
  std::vector<std::uint8_t> out(kBlock);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(i ^ salt);
  }
  return out;
}

TEST(HashTree, FreshTreeVerifiesZeroBlocks) {
  HashTree tree = make_tree();
  const std::vector<std::uint8_t> zeros(kBlock, 0);
  for (std::size_t leaf = 0; leaf < kLeaves; ++leaf) {
    const auto result = tree.verify(leaf, zeros, 0);
    EXPECT_TRUE(result.ok) << "leaf " << leaf;
  }
}

TEST(HashTree, DepthAndGeometry) {
  HashTree tree = make_tree();
  EXPECT_EQ(tree.depth(), 4u);  // log2(16)
  EXPECT_EQ(tree.leaf_count(), kLeaves);
  EXPECT_EQ(tree.block_bytes(), kBlock);
  EXPECT_EQ(tree.leaf_addr(0), kBase);
  EXPECT_EQ(tree.leaf_addr(3), kBase + 3 * kBlock);
  EXPECT_EQ(tree.leaf_for_addr(kBase), 0u);
  EXPECT_EQ(tree.leaf_for_addr(kBase + 3 * kBlock + 5), 3u);
}

TEST(HashTree, UpdateThenVerifySucceeds) {
  HashTree tree = make_tree();
  const auto data = block_pattern(0x5A);
  tree.update(3, data, 1);
  EXPECT_TRUE(tree.verify(3, data, 1).ok);
}

TEST(HashTree, VerifyWrongVersionFails) {
  HashTree tree = make_tree();
  const auto data = block_pattern(0x5A);
  tree.update(3, data, 1);
  const auto stale = tree.verify(3, data, 0);  // replayed old version
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.first_bad_level, 0u);
  const auto future = tree.verify(3, data, 2);
  EXPECT_FALSE(future.ok);
}

TEST(HashTree, UpdateChangesRoot) {
  HashTree tree = make_tree();
  const Sha256Digest root_before = tree.root();
  tree.update(7, block_pattern(1), 1);
  EXPECT_NE(tree.root(), root_before);
}

TEST(HashTree, UpdatesToDifferentLeavesAreIndependent) {
  HashTree tree = make_tree();
  const auto a = block_pattern(0x11);
  const auto b = block_pattern(0x22);
  tree.update(0, a, 1);
  tree.update(15, b, 1);
  EXPECT_TRUE(tree.verify(0, a, 1).ok);
  EXPECT_TRUE(tree.verify(15, b, 1).ok);
  // Untouched leaf still verifies as zero-at-version-0.
  const std::vector<std::uint8_t> zeros(kBlock, 0);
  EXPECT_TRUE(tree.verify(8, zeros, 0).ok);
}

TEST(HashTree, RelocatedDataFailsAtOtherLeaf) {
  HashTree tree = make_tree();
  const auto data = block_pattern(0x33);
  tree.update(2, data, 1);
  tree.update(9, data, 1);  // same bytes, its own leaf
  // Data authentic for leaf 2 does not verify at leaf 9 with leaf 2's
  // version... it does verify at 9 because we wrote it there too; the
  // relocation case is verifying data *as if* it lived at another address.
  // Leaf 5 never had this data: relocated ciphertext placed under leaf 5.
  const auto moved = tree.verify(5, data, 0);
  EXPECT_FALSE(moved.ok);
}

TEST(HashTree, OpCostsMatchTreeDepth) {
  HashTree tree = make_tree();
  const auto data = block_pattern(0x44);
  const auto update_cost = tree.update(0, data, 1);
  // Leaf hash + one parent per level.
  EXPECT_EQ(update_cost.hashes, 1 + tree.depth());
  const auto verify_result = tree.verify(0, data, 1);
  EXPECT_EQ(verify_result.cost.hashes, 1 + tree.depth());
}

TEST(HashTree, RebuildFromImageMatchesIncremental) {
  HashTree incremental = make_tree();
  std::vector<std::uint8_t> image(kLeaves * kBlock);
  std::vector<std::uint32_t> versions(kLeaves, 0);
  util::Xoshiro256 rng(3);
  rng.fill(std::span<std::uint8_t>(image.data(), image.size()));
  for (std::size_t leaf = 0; leaf < kLeaves; ++leaf) {
    versions[leaf] = static_cast<std::uint32_t>(leaf + 1);
    incremental.update(
        leaf,
        std::span<const std::uint8_t>(image.data() + leaf * kBlock, kBlock),
        versions[leaf]);
  }
  HashTree bulk = make_tree();
  bulk.rebuild(image, versions);
  EXPECT_EQ(bulk.root(), incremental.root());
}

TEST(HashTree, TamperedInternalNodeDetectedOnPathWalk) {
  HashTree tree = make_tree();
  const auto data = block_pattern(0x66);
  tree.update(4, data, 1);
  // Corrupt an intermediate node on leaf 4's path (level 2 covers leaves
  // 4..7 at index 1).
  Sha256Digest garbage{};
  garbage[0] = 0xFF;
  tree.poke_node(2, 1, garbage);
  const auto result = tree.verify(4, data, 1);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.first_bad_level, 2u);
}

TEST(HashTree, PeekPokeRoundTrip) {
  HashTree tree = make_tree();
  Sha256Digest marker{};
  marker[31] = 0xAB;
  tree.poke_node(1, 3, marker);
  EXPECT_EQ(tree.peek_node(1, 3), marker);
}

// Property sweep: any single-bit tamper in any block position is detected.
class TamperSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TamperSweep, SingleBitFlipDetected) {
  const std::size_t byte_pos = GetParam();
  HashTree tree = make_tree();
  auto data = block_pattern(0x77);
  tree.update(6, data, 5);
  data[byte_pos] ^= 0x01;
  const auto result = tree.verify(6, data, 5);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.first_bad_level, 0u);
}

INSTANTIATE_TEST_SUITE_P(BytePositions, TamperSweep,
                         ::testing::Values(0, 1, 7, 15, 16, 23, 30, 31));

// Property sweep over tree sizes: geometry and update/verify stay coherent.
class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, UpdateVerifyAcrossAllLeaves) {
  const std::size_t leaves = GetParam();
  HashTree tree(HashTree::Config{leaves, 16, 0});
  std::vector<std::uint8_t> data(16, 0xCD);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    data[0] = static_cast<std::uint8_t>(leaf);
    tree.update(leaf, data, 1);
    EXPECT_TRUE(tree.verify(leaf, data, 1).ok);
    data[0] ^= 0x80;
    EXPECT_FALSE(tree.verify(leaf, data, 1).ok);
    data[0] ^= 0x80;
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, SizeSweep,
                         ::testing::Values(2, 4, 8, 32, 128));

}  // namespace
}  // namespace secbus::crypto
