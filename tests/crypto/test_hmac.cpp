#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "util/hexdump.hpp"

namespace secbus::crypto {
namespace {

using util::from_hex;
using util::to_hex;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  HmacSha256 hmac({key.data(), key.size()});
  const auto data = bytes_of("Hi There");
  const Sha256Digest mac = hmac.mac({data.data(), data.size()});
  EXPECT_EQ(to_hex({mac.data(), mac.size()}),
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  HmacSha256 hmac({key.data(), key.size()});
  const auto data = bytes_of("what do ya want for nothing?");
  const Sha256Digest mac = hmac.mac({data.data(), data.size()});
  EXPECT_EQ(to_hex({mac.data(), mac.size()}),
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3FullBlocks) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  HmacSha256 hmac({key.data(), key.size()});
  const Sha256Digest mac = hmac.mac({data.data(), data.size()});
  EXPECT_EQ(to_hex({mac.data(), mac.size()}),
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // 131-byte key forces the hash-the-key path.
  const std::vector<std::uint8_t> key(131, 0xaa);
  HmacSha256 hmac({key.data(), key.size()});
  const auto data = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  const Sha256Digest mac = hmac.mac({data.data(), data.size()});
  EXPECT_EQ(to_hex({mac.data(), mac.size()}),
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, StreamingMatchesOneShot) {
  const auto key = bytes_of("stream-key");
  const auto data = bytes_of("part one and part two concatenated");
  HmacSha256 hmac({key.data(), key.size()});
  const Sha256Digest one_shot = hmac.mac({data.data(), data.size()});

  hmac.start();
  hmac.update({data.data(), 8});
  hmac.update({data.data() + 8, data.size() - 8});
  EXPECT_EQ(hmac.finish(), one_shot);
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  const auto k1 = bytes_of("key-1");
  const auto k2 = bytes_of("key-2");
  const auto data = bytes_of("same message");
  HmacSha256 h1({k1.data(), k1.size()});
  HmacSha256 h2({k2.data(), k2.size()});
  EXPECT_NE(h1.mac({data.data(), data.size()}),
            h2.mac({data.data(), data.size()}));
}

TEST(DeriveKey, DeterministicAndLabelSeparated) {
  const auto master = bytes_of("master-secret-0123456789");
  const auto info_a = bytes_of("cc-nonce");
  const auto info_b = bytes_of("ic-salt");

  std::array<std::uint8_t, 32> out_a1{}, out_a2{}, out_b{};
  derive_key({master.data(), master.size()}, {info_a.data(), info_a.size()},
             out_a1);
  derive_key({master.data(), master.size()}, {info_a.data(), info_a.size()},
             out_a2);
  derive_key({master.data(), master.size()}, {info_b.data(), info_b.size()},
             out_b);
  EXPECT_EQ(out_a1, out_a2);
  EXPECT_NE(out_a1, out_b);
}

TEST(DeriveKey, ProducesArbitraryLengths) {
  const auto master = bytes_of("m");
  const auto info = bytes_of("i");
  std::vector<std::uint8_t> out_short(4), out_long(100);
  derive_key({master.data(), master.size()}, {info.data(), info.size()},
             {out_short.data(), out_short.size()});
  derive_key({master.data(), master.size()}, {info.data(), info.size()},
             {out_long.data(), out_long.size()});
  // Long output extends the short output's prefix (counter-mode expansion).
  EXPECT_TRUE(std::equal(out_short.begin(), out_short.end(), out_long.begin()));
  // Later blocks are not repeats of the first.
  EXPECT_FALSE(std::equal(out_long.begin(), out_long.begin() + 32,
                          out_long.begin() + 32));
}

}  // namespace
}  // namespace secbus::crypto
