#include "crypto/aes_modes.hpp"

#include <gtest/gtest.h>

#include "util/hexdump.hpp"
#include "util/rng.hpp"

namespace secbus::crypto {
namespace {

using util::from_hex;
using util::to_hex;

const Aes128Key kNistKey = [] {
  Aes128Key k{};
  const auto bytes = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}();

// NIST SP 800-38A test data (first two plaintext blocks).
const std::vector<std::uint8_t> kPt = from_hex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51");

TEST(EcbMode, Sp80038aVectors) {
  const Aes128 aes(kNistKey);
  std::vector<std::uint8_t> ct(kPt.size());
  ecb_encrypt(aes, kPt, ct);
  EXPECT_EQ(to_hex({ct.data(), ct.size()}),
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf");
  std::vector<std::uint8_t> back(ct.size());
  ecb_decrypt(aes, ct, back);
  EXPECT_EQ(back, kPt);
}

TEST(EcbMode, InPlaceOperation) {
  const Aes128 aes(kNistKey);
  std::vector<std::uint8_t> buf = kPt;
  ecb_encrypt(aes, buf, buf);
  EXPECT_NE(buf, kPt);
  ecb_decrypt(aes, buf, buf);
  EXPECT_EQ(buf, kPt);
}

TEST(CbcMode, Sp80038aVectors) {
  const Aes128 aes(kNistKey);
  AesBlock iv{};
  const auto iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());

  std::vector<std::uint8_t> ct(kPt.size());
  cbc_encrypt(aes, iv, kPt, ct);
  EXPECT_EQ(to_hex({ct.data(), ct.size()}),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2");
  std::vector<std::uint8_t> back(ct.size());
  cbc_decrypt(aes, iv, ct, back);
  EXPECT_EQ(back, kPt);
}

TEST(CbcMode, InPlaceDecrypt) {
  const Aes128 aes(kNistKey);
  AesBlock iv{};
  iv[3] = 0x42;
  std::vector<std::uint8_t> buf = kPt;
  cbc_encrypt(aes, iv, buf, buf);
  cbc_decrypt(aes, iv, buf, buf);
  EXPECT_EQ(buf, kPt);
}

TEST(CtrMode, Sp80038aVectors) {
  const Aes128 aes(kNistKey);
  AesBlock ctr{};
  const auto ctr_bytes = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::copy(ctr_bytes.begin(), ctr_bytes.end(), ctr.begin());

  std::vector<std::uint8_t> ct(kPt.size());
  ctr_xcrypt(aes, ctr, kPt, ct);
  EXPECT_EQ(to_hex({ct.data(), ct.size()}),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
  // CTR is an involution with the same counter.
  std::vector<std::uint8_t> back(ct.size());
  ctr_xcrypt(aes, ctr, ct, back);
  EXPECT_EQ(back, kPt);
}

TEST(CtrMode, PartialBlockLengths) {
  const Aes128 aes(kNistKey);
  AesBlock ctr{};
  util::Xoshiro256 rng(5);
  for (std::size_t len : {1u, 7u, 15u, 17u, 33u}) {
    std::vector<std::uint8_t> pt(len);
    rng.fill(std::span<std::uint8_t>(pt.data(), pt.size()));
    std::vector<std::uint8_t> ct(len);
    ctr_xcrypt(aes, ctr, pt, ct);
    std::vector<std::uint8_t> back(len);
    ctr_xcrypt(aes, ctr, ct, back);
    EXPECT_EQ(back, pt) << "length " << len;
  }
}

TEST(MemoryTweak, LayoutBindsNonceAddressVersion) {
  const AesBlock tweak = make_memory_tweak(0xAABBCCDD, 0x1122334455667788ULL,
                                           0x99AA77EE);
  EXPECT_EQ(to_hex({tweak.data(), tweak.size()}),
            "aabbccdd112233445566778899aa77ee");
}

TEST(MemoryXcrypt, DifferentAddressesDifferentKeystream) {
  const Aes128 aes(kNistKey);
  const std::vector<std::uint8_t> zeros(16, 0);
  std::vector<std::uint8_t> ct_a(16), ct_b(16);
  memory_xcrypt(aes, 1, 0x1000, 1, zeros, ct_a);
  memory_xcrypt(aes, 1, 0x1010, 1, zeros, ct_b);
  EXPECT_NE(ct_a, ct_b);
}

TEST(MemoryXcrypt, DifferentVersionsDifferentKeystream) {
  const Aes128 aes(kNistKey);
  const std::vector<std::uint8_t> zeros(16, 0);
  std::vector<std::uint8_t> ct_v1(16), ct_v2(16);
  memory_xcrypt(aes, 1, 0x1000, 1, zeros, ct_v1);
  memory_xcrypt(aes, 1, 0x1000, 2, zeros, ct_v2);
  EXPECT_NE(ct_v1, ct_v2);
}

TEST(MemoryXcrypt, DifferentNoncesDifferentKeystream) {
  const Aes128 aes(kNistKey);
  const std::vector<std::uint8_t> zeros(16, 0);
  std::vector<std::uint8_t> ct_n1(16), ct_n2(16);
  memory_xcrypt(aes, 1, 0x1000, 1, zeros, ct_n1);
  memory_xcrypt(aes, 2, 0x1000, 1, zeros, ct_n2);
  EXPECT_NE(ct_n1, ct_n2);
}

TEST(MemoryXcrypt, RoundTripSameParameters) {
  const Aes128 aes(kNistKey);
  util::Xoshiro256 rng(11);
  std::vector<std::uint8_t> pt(48);
  rng.fill(std::span<std::uint8_t>(pt.data(), pt.size()));
  std::vector<std::uint8_t> ct(48), back(48);
  memory_xcrypt(aes, 7, 0x8000'0000, 3, pt, ct);
  memory_xcrypt(aes, 7, 0x8000'0000, 3, ct, back);
  EXPECT_EQ(back, pt);
}

}  // namespace
}  // namespace secbus::crypto
