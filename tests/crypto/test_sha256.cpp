#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/hexdump.hpp"

namespace secbus::crypto {
namespace {

std::string digest_hex(std::string_view text) {
  const Sha256Digest d = Sha256::digest(text);
  return util::to_hex({d.data(), d.size()});
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039"
      "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const Sha256Digest d = ctx.finalize();
  EXPECT_EQ(util::to_hex({d.data(), d.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message exercises the "pad spills into a second block" path.
  const std::string msg(64, 'x');
  const Sha256Digest one_shot = Sha256::digest(msg);

  Sha256 ctx;
  ctx.update(std::string_view(msg).substr(0, 64));
  EXPECT_EQ(ctx.finalize(), one_shot);
}

TEST(Sha256, IncrementalMatchesOneShotAtAllSplits) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, until the "
      "message clearly spans multiple SHA-256 blocks in total length!!";
  const Sha256Digest expected = Sha256::digest(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.update(std::string_view("garbage"));
  (void)ctx.finalize();
  ctx.reset();
  ctx.update(std::string_view("abc"));
  const Sha256Digest d = ctx.finalize();
  EXPECT_EQ(util::to_hex({d.data(), d.size()}),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DifferentMessagesDifferentDigests) {
  EXPECT_NE(digest_hex("abc"), digest_hex("abd"));
  // One NUL byte is a different message from the empty string.
  EXPECT_NE(digest_hex(""), digest_hex(std::string_view("\0", 1)));
}

TEST(Sha256, CompressionCounterAdvances) {
  Sha256::reset_compression_count();
  (void)Sha256::digest("abc");  // 1 block (with padding)
  EXPECT_EQ(Sha256::compression_count(), 1u);
  (void)Sha256::digest(std::string(64, 'y'));  // 1 data block + 1 pad block
  EXPECT_EQ(Sha256::compression_count(), 3u);
}

// FIPS 180-4 vectors on every compression datapath this host can run —
// the SHA-NI path's ground truth is the standard vectors, not the portable
// implementation.
class Sha256ImplVectors : public ::testing::TestWithParam<ShaImpl> {
 protected:
  std::string hex(std::string_view text) const {
    Sha256 ctx;
    ctx.set_impl(GetParam());
    ctx.update(text);
    const Sha256Digest d = ctx.finalize();
    return util::to_hex({d.data(), d.size()});
  }
};

TEST_P(Sha256ImplVectors, StandardVectors) {
  EXPECT_EQ(hex(""),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039"
      "a33ce45964ff2167f6ecedd419db06c1");
}

TEST_P(Sha256ImplVectors, MillionAs) {
  Sha256 ctx;
  ctx.set_impl(GetParam());
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const Sha256Digest d = ctx.finalize();
  EXPECT_EQ(util::to_hex({d.data(), d.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0");
}

TEST_P(Sha256ImplVectors, DigestPartsMatchesStreaming) {
  const std::string a = "leaf data payload spanning some bytes";
  const std::string b = "binder";
  Sha256 ctx;
  ctx.set_impl(GetParam());
  ctx.update(a);
  ctx.update(b);
  const Sha256Digest streamed = ctx.finalize();
  const Sha256Digest fused = Sha256::digest_parts(
      {std::span<const std::uint8_t>(
           reinterpret_cast<const std::uint8_t*>(a.data()), a.size()),
       std::span<const std::uint8_t>(
           reinterpret_cast<const std::uint8_t*>(b.data()), b.size())},
      GetParam());
  EXPECT_EQ(fused, streamed);
}

std::vector<ShaImpl> supported_sha_impls() {
  std::vector<ShaImpl> impls{ShaImpl::kPortable};
  if (sha_impl_supported(ShaImpl::kShaNi)) impls.push_back(ShaImpl::kShaNi);
  return impls;
}

INSTANTIATE_TEST_SUITE_P(AllImpls, Sha256ImplVectors,
                         ::testing::ValuesIn(supported_sha_impls()),
                         [](const auto& info) {
                           return info.param == ShaImpl::kPortable ? "portable"
                                                                   : "shani";
                         });

}  // namespace
}  // namespace secbus::crypto
