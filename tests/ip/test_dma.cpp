#include "ip/dma_engine.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "ip/scripted_master.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::ip {
namespace {

struct DmaFixture : public ::testing::Test {
  void SetUp() override {
    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x2000, sid, "bram");
    dma = std::make_unique<DmaEngine>("dma", 9);
    dma->connect(bus_obj->attach_master(9, "dma"));
    kernel.add(*dma);
    kernel.add(*bus_obj);
  }

  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x2000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
  std::unique_ptr<DmaEngine> dma;
};

TEST_F(DmaFixture, CopiesRegionCorrectly) {
  std::vector<std::uint8_t> source(256);
  for (std::size_t i = 0; i < source.size(); ++i) {
    source[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  }
  bram.store().write(0x0100, {source.data(), source.size()});

  dma->start(DmaEngine::Job{0x0100, 0x1000, 256, 8});
  kernel.run_until([this] { return !dma->busy(); }, 50'000);
  EXPECT_TRUE(dma->job_done());

  std::vector<std::uint8_t> copied(256);
  bram.store().read(0x1000, {copied.data(), copied.size()});
  EXPECT_EQ(copied, source);
  EXPECT_EQ(dma->stats().bytes_copied, 256u);
  EXPECT_EQ(dma->stats().bursts, 8u);  // 256 bytes / 32-byte bursts
  EXPECT_EQ(dma->stats().errors, 0u);
}

TEST_F(DmaFixture, HandlesNonMultipleBurstTail) {
  bram.store().write_byte(0x0000, 0x77);
  dma->start(DmaEngine::Job{0x0000, 0x1000, 40, 8});  // 32 + 8 bytes
  kernel.run_until([this] { return !dma->busy(); }, 50'000);
  EXPECT_EQ(dma->stats().bytes_copied, 40u);
  EXPECT_EQ(dma->stats().bursts, 2u);
  EXPECT_EQ(bram.store().read_byte(0x1000), 0x77);
}

TEST_F(DmaFixture, AbortsOnError) {
  // Destination outside the mapped region: the write decode-errors and the
  // DMA must abort rather than hang.
  dma->start(DmaEngine::Job{0x0000, 0x8000, 64, 8});
  kernel.run_until([this] { return !dma->busy(); }, 50'000);
  EXPECT_FALSE(dma->busy());
  EXPECT_EQ(dma->stats().errors, 1u);
  EXPECT_EQ(dma->stats().bytes_copied, 0u);
}

TEST_F(DmaFixture, TimestampsRecorded) {
  dma->start(DmaEngine::Job{0x0000, 0x1000, 64, 4});
  kernel.run_until([this] { return !dma->busy(); }, 50'000);
  EXPECT_GT(dma->stats().finished_at, dma->stats().started_at);
}

TEST(ScriptedMaster, RunsScriptInOrder) {
  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  bus::SystemBus bus("bus");
  const auto sid = bus.add_slave(bram);
  bus.map_region(0x0000, 0x1000, sid, "bram");
  ScriptedMaster master("script", 3);
  master.connect(bus.attach_master(3, "script"));
  kernel.add(master);
  kernel.add(bus);

  master.enqueue_write(0, 0x100, {1, 2, 3, 4});
  master.enqueue_read(5, 0x100);
  master.enqueue_read(0, 0x104);
  kernel.run_until([&master] { return master.done(); }, 10'000);

  ASSERT_TRUE(master.done());
  const auto& s = master.stats();
  EXPECT_EQ(s.issued, 3u);
  EXPECT_EQ(s.ok, 3u);
  ASSERT_EQ(s.responses.size(), 3u);
  EXPECT_EQ(s.responses[1].data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(s.responses[2].data, std::vector<std::uint8_t>(4, 0));
}

TEST(ScriptedMaster, DelaysSpaceOutIssues) {
  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  bus::SystemBus bus("bus");
  const auto sid = bus.add_slave(bram);
  bus.map_region(0x0000, 0x1000, sid, "bram");
  ScriptedMaster master("script", 3);
  master.connect(bus.attach_master(3, "script"));
  kernel.add(master);
  kernel.add(bus);

  master.enqueue_read(0, 0x0);
  master.enqueue_read(100, 0x0);
  kernel.run_until([&master] { return master.done(); }, 10'000);
  const auto& r = master.stats().responses;
  ASSERT_EQ(r.size(), 2u);
  EXPECT_GE(r[1].issued_at, r[0].completed_at + 100);
}

}  // namespace
}  // namespace secbus::ip
