#include "ip/processor.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::ip {
namespace {

Processor::Workload basic_workload(std::uint64_t total = 50) {
  Processor::Workload w;
  w.targets.push_back({0x0000, 0x800, 0.7, false});
  w.targets.push_back({0x0800, 0x800, 0.3, true});
  w.write_fraction = 0.5;
  w.total_transactions = total;
  return w;
}

struct ProcessorFixture : public ::testing::Test {
  void SetUp() override {
    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x1000, sid, "bram");
  }

  Processor& make_cpu(std::uint64_t seed, Processor::Workload w) {
    cpu = std::make_unique<Processor>("cpu0", 0, seed, std::move(w));
    cpu->connect(bus_obj->attach_master(0, "cpu0"));
    kernel.add(*cpu);
    kernel.add(*bus_obj);
    return *cpu;
  }

  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
  std::unique_ptr<Processor> cpu;
};

TEST_F(ProcessorFixture, CompletesConfiguredTransactionCount) {
  auto& c = make_cpu(1, basic_workload(50));
  kernel.run_until([&c] { return c.done(); }, 100'000);
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.stats().completed, 50u);
  EXPECT_EQ(c.stats().failed, 0u);
  EXPECT_EQ(c.stats().issued, 50u);
  EXPECT_EQ(c.stats().reads + c.stats().writes, 50u);
}

TEST_F(ProcessorFixture, TracksInternalExternalMix) {
  auto& c = make_cpu(2, basic_workload(200));
  kernel.run_until([&c] { return c.done(); }, 200'000);
  const auto& s = c.stats();
  EXPECT_EQ(s.internal_accesses + s.external_accesses, 200u);
  // 70/30 split within statistical slack.
  EXPECT_GT(s.internal_accesses, 100u);
  EXPECT_GT(s.external_accesses, 20u);
}

TEST_F(ProcessorFixture, WriteFractionRespected) {
  Processor::Workload w = basic_workload(300);
  w.write_fraction = 0.8;
  auto& c = make_cpu(3, std::move(w));
  kernel.run_until([&c] { return c.done(); }, 300'000);
  EXPECT_GT(c.stats().writes, 200u);
  EXPECT_LT(c.stats().reads, 100u);
}

TEST_F(ProcessorFixture, ComputeGapsAccumulate) {
  Processor::Workload w = basic_workload(20);
  w.compute_min = 10;
  w.compute_max = 10;
  auto& c = make_cpu(4, std::move(w));
  kernel.run_until([&c] { return c.done(); }, 100'000);
  // At least 10 compute cycles per transaction.
  EXPECT_GE(c.stats().compute_cycles, 200u);
  EXPECT_GT(c.stats().stall_cycles, 0u);
}

TEST_F(ProcessorFixture, LatencyMeasured) {
  auto& c = make_cpu(5, basic_workload(30));
  kernel.run_until([&c] { return c.done(); }, 100'000);
  EXPECT_EQ(c.stats().latency.count(), 30u);
  // Minimum: 1 addr + 1 BRAM + 1 beat, plus queue hand-offs.
  EXPECT_GE(c.stats().latency.min(), 3.0);
}

TEST_F(ProcessorFixture, DeterministicForSameSeed) {
  auto& c = make_cpu(42, basic_workload(100));
  kernel.run_until([&c] { return c.done(); }, 200'000);
  const auto bytes_first = c.stats().bytes_moved;
  const auto latency_first = c.stats().latency.mean();

  // Fresh identical setup.
  sim::SimKernel kernel2;
  mem::Bram bram2{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  bus::SystemBus bus2("bus");
  const auto sid = bus2.add_slave(bram2);
  bus2.map_region(0x0000, 0x1000, sid, "bram");
  Processor cpu2("cpu0", 0, 42, basic_workload(100));
  cpu2.connect(bus2.attach_master(0, "cpu0"));
  kernel2.add(cpu2);
  kernel2.add(bus2);
  kernel2.run_until([&cpu2] { return cpu2.done(); }, 200'000);

  EXPECT_EQ(cpu2.stats().bytes_moved, bytes_first);
  EXPECT_DOUBLE_EQ(cpu2.stats().latency.mean(), latency_first);
}

TEST_F(ProcessorFixture, ResetRestartsCleanly) {
  auto& c = make_cpu(6, basic_workload(10));
  kernel.run_until([&c] { return c.done(); }, 50'000);
  EXPECT_TRUE(c.done());
  kernel.reset();
  EXPECT_FALSE(c.done());
  EXPECT_EQ(c.stats().issued, 0u);
  kernel.run_until([&c] { return c.done(); }, 50'000);
  EXPECT_EQ(c.stats().completed, 10u);
}

TEST_F(ProcessorFixture, FailedResponsesCountAsProgress) {
  // Unmapped target: every access decode-errors, but the processor must
  // still terminate (no deadlock on failure).
  Processor::Workload w;
  w.targets.push_back({0x4000, 0x400, 1.0, false});  // unmapped on this bus
  w.total_transactions = 10;
  auto& c = make_cpu(7, std::move(w));
  kernel.run_until([&c] { return c.done(); }, 50'000);
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.stats().failed, 10u);
  EXPECT_EQ(c.stats().completed, 0u);
}

}  // namespace
}  // namespace secbus::ip
