#include "ip/trace_io.hpp"

#include <gtest/gtest.h>

namespace secbus::ip {
namespace {

std::vector<TraceRecord> sample_trace() {
  return {
      {0, bus::BusOp::kRead, 0x1000, bus::DataFormat::kWord, 1},
      {12, bus::BusOp::kWrite, 0x8000'0040, bus::DataFormat::kByte, 3},
      {5, bus::BusOp::kRead, 0x2000, bus::DataFormat::kHalfWord, 8},
  };
}

TEST(TraceIo, StringRoundTrip) {
  const auto records = sample_trace();
  const std::string text = trace_to_string(records);
  bool ok = false;
  const auto back = trace_from_string(text, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back, records);
}

TEST(TraceIo, TextFormatIsHumanReadable) {
  const std::string text = trace_to_string(sample_trace());
  EXPECT_NE(text.find("0 r 1000 32 1"), std::string::npos);
  EXPECT_NE(text.find("12 w 80000040 8 3"), std::string::npos);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  bool ok = false;
  const auto records =
      trace_from_string("# header comment\n\n3 r 10 32 1\n", &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].delay, 3u);
}

TEST(TraceIo, RejectsMalformedLines) {
  bool ok = true;
  EXPECT_TRUE(trace_from_string("not a record\n", &ok).empty());
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(trace_from_string("1 x 10 32 1\n", &ok).empty());  // bad op
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(trace_from_string("1 r 10 24 1\n", &ok).empty());  // bad width
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(trace_from_string("1 r 10 32 0\n", &ok).empty());  // zero burst
  EXPECT_FALSE(ok);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/secbus_trace.txt";
  const auto records = sample_trace();
  ASSERT_TRUE(write_trace(path, records));
  bool ok = false;
  const auto back = read_trace(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(back, records);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReportsError) {
  bool ok = true;
  EXPECT_TRUE(read_trace("/nonexistent/secbus.txt", &ok).empty());
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace secbus::ip
