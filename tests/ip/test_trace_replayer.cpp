#include "ip/trace_replayer.hpp"

#include <gtest/gtest.h>

#include "bus/system_bus.hpp"
#include "ip/processor.hpp"
#include "mem/bram.hpp"
#include "sim/kernel.hpp"

namespace secbus::ip {
namespace {

struct ReplayFixture : public ::testing::Test {
  void SetUp() override {
    bus_obj = std::make_unique<bus::SystemBus>("bus");
    const auto sid = bus_obj->add_slave(bram);
    bus_obj->map_region(0x0000, 0x1000, sid, "bram");
  }

  sim::SimKernel kernel;
  mem::Bram bram{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  std::unique_ptr<bus::SystemBus> bus_obj;
};

TEST_F(ReplayFixture, ReplaysFixedTrace) {
  std::vector<TraceRecord> trace{
      {0, bus::BusOp::kWrite, 0x100, bus::DataFormat::kWord, 2},
      {5, bus::BusOp::kRead, 0x100, bus::DataFormat::kWord, 2},
      {3, bus::BusOp::kRead, 0x200, bus::DataFormat::kByte, 1},
  };
  TraceReplayer replayer("rp", 0, trace);
  replayer.connect(bus_obj->attach_master(0, "rp"));
  kernel.add(replayer);
  kernel.add(*bus_obj);

  kernel.run_until([&] { return replayer.done(); }, 10'000);
  ASSERT_TRUE(replayer.done());
  EXPECT_EQ(replayer.stats().issued, 3u);
  EXPECT_EQ(replayer.stats().ok, 3u);
  EXPECT_EQ(replayer.stats().failed, 0u);
  EXPECT_EQ(bram.writes(), 1u);
  EXPECT_EQ(bram.reads(), 2u);
}

TEST_F(ReplayFixture, CapturedProcessorTraceReplaysIdentically) {
  // Capture from a live processor...
  Processor::Workload w;
  w.targets.push_back({0x0000, 0x800, 1.0, false});
  w.total_transactions = 60;
  w.capture_trace = true;
  Processor cpu("cpu", 0, 99, w);
  cpu.connect(bus_obj->attach_master(0, "cpu"));
  kernel.add(cpu);
  kernel.add(*bus_obj);
  kernel.run_until([&] { return cpu.done(); }, 200'000);
  ASSERT_TRUE(cpu.done());
  const auto trace = cpu.captured_trace();
  ASSERT_EQ(trace.size(), 60u);

  // ... and replay through an identical fresh system.
  sim::SimKernel kernel2;
  mem::Bram bram2{"bram", mem::Bram::Config{0x0000, 0x1000, 1}};
  bus::SystemBus bus2("bus");
  const auto sid2 = bus2.add_slave(bram2);
  bus2.map_region(0x0000, 0x1000, sid2, "bram");
  TraceReplayer replayer("rp", 0, trace);
  replayer.connect(bus2.attach_master(0, "rp"));
  kernel2.add(replayer);
  kernel2.add(bus2);
  kernel2.run_until([&] { return replayer.done(); }, 200'000);

  ASSERT_TRUE(replayer.done());
  EXPECT_EQ(replayer.stats().ok, 60u);
  // Same access mix: read/write counts match the original run.
  EXPECT_EQ(bram2.reads(), cpu.stats().reads);
  EXPECT_EQ(bram2.writes(), cpu.stats().writes);
  // Same inter-access gaps: total cycle counts line up closely (payload
  // contents differ, timing does not depend on data).
  EXPECT_EQ(kernel2.now(), kernel.now());
}

TEST_F(ReplayFixture, CaptureOffByDefault) {
  Processor::Workload w;
  w.targets.push_back({0x0000, 0x800, 1.0, false});
  w.total_transactions = 5;
  Processor cpu("cpu", 0, 1, w);
  cpu.connect(bus_obj->attach_master(0, "cpu"));
  kernel.add(cpu);
  kernel.add(*bus_obj);
  kernel.run_until([&] { return cpu.done(); }, 50'000);
  EXPECT_TRUE(cpu.captured_trace().empty());
}

TEST_F(ReplayFixture, ResetRestartsReplay) {
  std::vector<TraceRecord> trace{
      {0, bus::BusOp::kRead, 0x0, bus::DataFormat::kWord, 1}};
  TraceReplayer replayer("rp", 0, trace);
  replayer.connect(bus_obj->attach_master(0, "rp"));
  kernel.add(replayer);
  kernel.add(*bus_obj);
  kernel.run_until([&] { return replayer.done(); }, 1'000);
  EXPECT_TRUE(replayer.done());
  kernel.reset();
  EXPECT_FALSE(replayer.done());
  kernel.run_until([&] { return replayer.done(); }, 1'000);
  EXPECT_EQ(replayer.stats().ok, 1u);
}

TEST_F(ReplayFixture, FailedAccessesCountedNotFatal) {
  std::vector<TraceRecord> trace{
      {0, bus::BusOp::kRead, 0x8000, bus::DataFormat::kWord, 1},  // unmapped
      {0, bus::BusOp::kRead, 0x0, bus::DataFormat::kWord, 1}};
  TraceReplayer replayer("rp", 0, trace);
  replayer.connect(bus_obj->attach_master(0, "rp"));
  kernel.add(replayer);
  kernel.add(*bus_obj);
  kernel.run_until([&] { return replayer.done(); }, 10'000);
  EXPECT_EQ(replayer.stats().failed, 1u);
  EXPECT_EQ(replayer.stats().ok, 1u);
}

}  // namespace
}  // namespace secbus::ip
