#include "mem/backing_store.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace secbus::mem {
namespace {

TEST(BackingStore, UntouchedMemoryReadsFill) {
  BackingStore store;
  std::vector<std::uint8_t> buf(8, 0xFF);
  store.read(0x123456, buf);
  EXPECT_EQ(buf, std::vector<std::uint8_t>(8, 0x00));
  EXPECT_EQ(store.allocated_pages(), 0u);
}

TEST(BackingStore, CustomFillByte) {
  BackingStore store;
  store.set_fill_byte(0xCD);
  EXPECT_EQ(store.read_byte(0x10), 0xCD);
}

TEST(BackingStore, WriteReadRoundTrip) {
  BackingStore store;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  store.write(0x1000, data);
  std::vector<std::uint8_t> back(5);
  store.read(0x1000, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.bytes_written(), 5u);
}

TEST(BackingStore, CrossPageAccess) {
  BackingStore store;
  const sim::Addr addr = BackingStore::kPageBytes - 2;
  const std::vector<std::uint8_t> data{0xAA, 0xBB, 0xCC, 0xDD};
  store.write(addr, data);
  EXPECT_EQ(store.allocated_pages(), 2u);
  std::vector<std::uint8_t> back(4);
  store.read(addr, back);
  EXPECT_EQ(back, data);
}

TEST(BackingStore, SparseAllocation) {
  BackingStore store;
  store.write_byte(0, 1);
  store.write_byte(1ULL << 40, 2);  // terabyte apart
  EXPECT_EQ(store.allocated_pages(), 2u);
  EXPECT_EQ(store.read_byte(0), 1);
  EXPECT_EQ(store.read_byte(1ULL << 40), 2);
}

TEST(BackingStore, OverwriteInPlace) {
  BackingStore store;
  store.write_byte(0x10, 0x11);
  store.write_byte(0x10, 0x22);
  EXPECT_EQ(store.read_byte(0x10), 0x22);
  EXPECT_EQ(store.allocated_pages(), 1u);
}

TEST(BackingStore, PeekPokeAliasReadWrite) {
  BackingStore store;
  const std::vector<std::uint8_t> data{9, 8, 7};
  store.poke(0x42, data);
  std::vector<std::uint8_t> back(3);
  store.peek(0x42, back);
  EXPECT_EQ(back, data);
}

TEST(BackingStore, ClearDropsEverything) {
  BackingStore store;
  store.write_byte(5, 1);
  store.clear();
  EXPECT_EQ(store.allocated_pages(), 0u);
  EXPECT_EQ(store.bytes_written(), 0u);
  EXPECT_EQ(store.read_byte(5), 0x00);
}

TEST(BackingStore, LargeMultiPageWrite) {
  BackingStore store;
  std::vector<std::uint8_t> data(3 * BackingStore::kPageBytes + 17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13);
  }
  store.write(100, data);
  std::vector<std::uint8_t> back(data.size());
  store.read(100, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.allocated_pages(), 4u);
}

}  // namespace
}  // namespace secbus::mem
