#include "mem/bram.hpp"

#include <gtest/gtest.h>

namespace secbus::mem {
namespace {

Bram make_bram() {
  return Bram("bram0", Bram::Config{0x1000, 0x1000, 1});
}

TEST(Bram, WriteReadRoundTrip) {
  Bram bram = make_bram();
  auto w = bus::make_write(0, 0x1100, {4, 3, 2, 1});
  EXPECT_EQ(bram.access(w, 0).status, bus::TransStatus::kOk);
  auto r = bus::make_read(0, 0x1100);
  EXPECT_EQ(bram.access(r, 1).status, bus::TransStatus::kOk);
  EXPECT_EQ(r.data, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  EXPECT_EQ(bram.reads(), 1u);
  EXPECT_EQ(bram.writes(), 1u);
}

TEST(Bram, SingleCycleLatency) {
  Bram bram = make_bram();
  auto r = bus::make_read(0, 0x1000);
  EXPECT_EQ(bram.access(r, 0).latency, 1u);
}

TEST(Bram, ConfigurableLatency) {
  Bram slow("slow", Bram::Config{0, 0x100, 3});
  auto r = bus::make_read(0, 0x0);
  EXPECT_EQ(slow.access(r, 0).latency, 3u);
}

TEST(Bram, OutOfRangeRejected) {
  Bram bram = make_bram();
  auto low = bus::make_read(0, 0x0FFC);
  EXPECT_EQ(bram.access(low, 0).status, bus::TransStatus::kSlaveError);
  auto high = bus::make_read(0, 0x2000);
  EXPECT_EQ(bram.access(high, 0).status, bus::TransStatus::kSlaveError);
  auto straddle = bus::make_read(0, 0x1FFC, bus::DataFormat::kWord, 2);
  EXPECT_EQ(bram.access(straddle, 0).status, bus::TransStatus::kSlaveError);
}

TEST(Bram, ExactBoundaryAccessOk) {
  Bram bram = make_bram();
  auto r = bus::make_read(0, 0x1FFC);  // last word
  EXPECT_EQ(bram.access(r, 0).status, bus::TransStatus::kOk);
}

TEST(Bram, StorePreloadVisibleToBusReads) {
  Bram bram = make_bram();
  const std::vector<std::uint8_t> boot{0xB0, 0x07, 0x00, 0x01};
  bram.store().write(0x1800, {boot.data(), boot.size()});
  auto r = bus::make_read(0, 0x1800);
  (void)bram.access(r, 0);
  EXPECT_EQ(r.data, boot);
}

TEST(Bram, ByteAndHalfWordAccesses) {
  Bram bram = make_bram();
  auto wb = bus::make_write(0, 0x1004, {0xAB}, bus::DataFormat::kByte);
  (void)bram.access(wb, 0);
  auto rb = bus::make_read(0, 0x1004, bus::DataFormat::kByte);
  (void)bram.access(rb, 0);
  EXPECT_EQ(rb.data, (std::vector<std::uint8_t>{0xAB}));

  auto wh = bus::make_write(0, 0x1006, {0x11, 0x22}, bus::DataFormat::kHalfWord);
  (void)bram.access(wh, 0);
  auto rh = bus::make_read(0, 0x1006, bus::DataFormat::kHalfWord);
  (void)bram.access(rh, 0);
  EXPECT_EQ(rh.data, (std::vector<std::uint8_t>{0x11, 0x22}));
}

}  // namespace
}  // namespace secbus::mem
