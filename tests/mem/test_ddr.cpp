#include "mem/ddr.hpp"

#include <gtest/gtest.h>

namespace secbus::mem {
namespace {

DdrMemory::Config base_config() {
  DdrMemory::Config cfg;
  cfg.base = 0x8000'0000;
  cfg.size = 1 << 20;
  cfg.banks = 4;
  cfg.row_bytes = 1024;
  cfg.t_cas = 5;
  cfg.t_rcd = 5;
  cfg.t_rp = 5;
  return cfg;
}

TEST(Ddr, WriteReadRoundTrip) {
  DdrMemory ddr("ddr", base_config());
  auto w = bus::make_write(0, 0x8000'0100, {9, 9, 8, 8});
  EXPECT_EQ(ddr.access(w, 0).status, bus::TransStatus::kOk);
  auto r = bus::make_read(0, 0x8000'0100);
  EXPECT_EQ(ddr.access(r, 1).status, bus::TransStatus::kOk);
  EXPECT_EQ(r.data, (std::vector<std::uint8_t>{9, 9, 8, 8}));
}

TEST(Ddr, FirstAccessIsRowMiss) {
  DdrMemory ddr("ddr", base_config());
  auto r = bus::make_read(0, 0x8000'0000);
  // Bank idle (no open row): t_rcd + t_cas.
  EXPECT_EQ(ddr.access(r, 0).latency, 10u);
  EXPECT_EQ(ddr.stats().row_misses, 1u);
}

TEST(Ddr, RowHitAfterFirstAccess) {
  DdrMemory ddr("ddr", base_config());
  auto r1 = bus::make_read(0, 0x8000'0000);
  (void)ddr.access(r1, 0);
  auto r2 = bus::make_read(0, 0x8000'0040);  // same 1KiB row
  EXPECT_EQ(ddr.access(r2, 1).latency, 5u);  // t_cas only
  EXPECT_EQ(ddr.stats().row_hits, 1u);
}

TEST(Ddr, RowConflictPaysPrecharge) {
  DdrMemory ddr("ddr", base_config());
  auto r1 = bus::make_read(0, 0x8000'0000);  // bank 0, row 0
  (void)ddr.access(r1, 0);
  // Same bank, different row: rows interleave across 4 banks, so row at
  // +4*row_bytes lands in bank 0 again.
  auto r2 = bus::make_read(0, 0x8000'0000 + 4 * 1024);
  EXPECT_EQ(ddr.access(r2, 1).latency, 15u);  // t_rp + t_rcd + t_cas
  EXPECT_EQ(ddr.stats().row_misses, 2u);
}

TEST(Ddr, BanksTrackRowsIndependently) {
  DdrMemory ddr("ddr", base_config());
  auto r1 = bus::make_read(0, 0x8000'0000);          // bank 0
  auto r2 = bus::make_read(0, 0x8000'0000 + 1024);   // bank 1
  (void)ddr.access(r1, 0);
  (void)ddr.access(r2, 1);
  // Re-access bank 0's open row: still a hit despite bank 1 activity.
  auto r3 = bus::make_read(0, 0x8000'0010);
  EXPECT_EQ(ddr.access(r3, 2).latency, 5u);
  EXPECT_DOUBLE_EQ(ddr.stats().hit_rate(), 1.0 / 3.0);
}

TEST(Ddr, OutOfRangeRejected) {
  DdrMemory ddr("ddr", base_config());
  auto low = bus::make_read(0, 0x7FFF'FFFC);
  EXPECT_EQ(ddr.access(low, 0).status, bus::TransStatus::kSlaveError);
  auto high = bus::make_read(0, 0x8010'0000);
  EXPECT_EQ(ddr.access(high, 0).status, bus::TransStatus::kSlaveError);
}

TEST(Ddr, RefreshPenaltyOncePerEpoch) {
  DdrMemory::Config cfg = base_config();
  cfg.refresh_interval = 100;
  cfg.refresh_penalty = 11;
  DdrMemory ddr("ddr", cfg);
  auto r1 = bus::make_read(0, 0x8000'0000);
  // now=150 -> epoch 1 != initial epoch 0: refresh penalty applies.
  EXPECT_EQ(ddr.access(r1, 150).latency, 10u + 11u);
  auto r2 = bus::make_read(0, 0x8000'0010);
  // Same epoch: no second penalty.
  EXPECT_EQ(ddr.access(r2, 160).latency, 5u);
  EXPECT_EQ(ddr.stats().refresh_stalls, 1u);
}

TEST(Ddr, StoreTamperableFromOutside) {
  // The attack surface: direct poke bypasses the bus model entirely.
  DdrMemory ddr("ddr", base_config());
  auto w = bus::make_write(0, 0x8000'0200, {1, 2, 3, 4});
  (void)ddr.access(w, 0);
  const std::vector<std::uint8_t> tampered{0xEE, 0xEE, 0xEE, 0xEE};
  ddr.store().poke(0x8000'0200, {tampered.data(), tampered.size()});
  auto r = bus::make_read(0, 0x8000'0200);
  (void)ddr.access(r, 1);
  EXPECT_EQ(r.data, tampered);
}

TEST(Ddr, ResetTimingClearsRowStateAndStats) {
  DdrMemory ddr("ddr", base_config());
  auto r1 = bus::make_read(0, 0x8000'0000);
  (void)ddr.access(r1, 0);
  ddr.reset_timing_state();
  EXPECT_EQ(ddr.stats().reads, 0u);
  auto r2 = bus::make_read(0, 0x8000'0000);
  EXPECT_EQ(ddr.access(r2, 0).latency, 10u);  // row miss again
}

}  // namespace
}  // namespace secbus::mem
