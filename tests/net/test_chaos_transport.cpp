// Seeded network fault injection over FakeTransport's manual clock: each
// fault mode (drop, delay, duplicate, truncate, reset) must behave exactly
// as documented, delayed frames must stay FIFO per connection, and the
// whole fault stream must be reproducible from its seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/chaos_transport.hpp"
#include "net/fake_transport.hpp"

namespace secbus::net {
namespace {

using util::Json;

Json ping(std::uint64_t n) {
  Json j = Json::object();
  j.set("type", Json::string("ping"));
  j.set("n", Json::number(n));
  return j;
}

std::uint64_t n_of(const Json& j) {
  std::uint64_t n = 0;
  EXPECT_NE(j.find("n"), nullptr);
  if (j.find("n") != nullptr) {
    EXPECT_TRUE(j.find("n")->to_u64(n));
  }
  return n;
}

TEST(ChaosTransport, AllFaultsOffIsAPassThrough) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  for (std::uint64_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(chaos.send(conn, ping(n)));
  }
  const std::vector<Json> inbox = fake.take_client_inbox(conn);
  ASSERT_EQ(inbox.size(), 3u);
  for (std::uint64_t n = 0; n < 3; ++n) EXPECT_EQ(n_of(inbox[n]), n);

  const ChaosNetStats stats = chaos.stats();
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.dropped + stats.delayed + stats.duplicated +
                stats.truncated + stats.resets,
            0u);
}

TEST(ChaosTransport, DropLooksLikeSuccessToTheSender) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.drop = 1.0;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  EXPECT_TRUE(chaos.send(conn, ping(1)));  // lossy networks report success
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());
  EXPECT_TRUE(fake.client_open(conn));
  EXPECT_EQ(chaos.stats().dropped, 1u);
}

TEST(ChaosTransport, ResetTearsDownTheConnection) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.reset = 1.0;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  EXPECT_FALSE(chaos.send(conn, ping(1)));
  EXPECT_FALSE(fake.client_open(conn));
  EXPECT_EQ(chaos.stats().resets, 1u);
}

TEST(ChaosTransport, TruncationPoisonsThePeerStream) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.trunc = 1.0;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  // One truncated frame is indistinguishable from a partial write — the
  // decoder buffers it awaiting the rest. As further (also truncated)
  // frames land, the stream stops being a prefix of any valid frame
  // sequence and the decoder poisons, exactly like garbage on real TCP.
  for (std::uint64_t n = 0; n < 16 && !fake.client_stream_corrupt(conn);
       ++n) {
    EXPECT_TRUE(chaos.send(conn, ping(n)));
  }
  EXPECT_TRUE(fake.client_stream_corrupt(conn));
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());
  EXPECT_GE(chaos.stats().truncated, 2u);
}

TEST(ChaosTransport, DuplicateDeliversTheFrameTwice) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.dup = 1.0;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  EXPECT_TRUE(chaos.send(conn, ping(7)));
  const std::vector<Json> inbox = fake.take_client_inbox(conn);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(n_of(inbox[0]), 7u);
  EXPECT_EQ(n_of(inbox[1]), 7u);
  EXPECT_EQ(chaos.stats().duplicated, 1u);
}

TEST(ChaosTransport, DelayHoldsFramesUntilDueAndPreservesFifo) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.delay_min_ms = 10;
  opt.delay_max_ms = 20;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  for (std::uint64_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(chaos.send(conn, ping(n)));
  }
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());  // nothing due yet
  EXPECT_EQ(chaos.stats().delayed, 4u);

  // Not yet: the earliest possible due time is t=10.
  std::vector<TransportEvent> events;
  std::string error;
  fake.advance_ms(9);
  ASSERT_TRUE(chaos.poll(0, events, &error)) << error;
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());

  // Past the latest possible due time every frame is out, in send order —
  // the per-connection FIFO clamp mirrors latency on a TCP stream.
  fake.advance_ms(16);  // t = 25 > delay_max
  ASSERT_TRUE(chaos.poll(0, events, &error)) << error;
  const std::vector<Json> inbox = fake.take_client_inbox(conn);
  ASSERT_EQ(inbox.size(), 4u);
  for (std::uint64_t n = 0; n < 4; ++n) EXPECT_EQ(n_of(inbox[n]), n);
}

TEST(ChaosTransport, SendAlsoPumpsTheDelayQueue) {
  // The worker's heartbeat thread may be the only caller for a while;
  // send() must release due frames itself, not wait for a poll.
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.delay_min_ms = 5;
  opt.delay_max_ms = 5;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  EXPECT_TRUE(chaos.send(conn, ping(0)));
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());
  fake.advance_ms(10);
  EXPECT_TRUE(chaos.send(conn, ping(1)));  // pumps frame 0 out...
  const std::vector<Json> inbox = fake.take_client_inbox(conn);
  ASSERT_EQ(inbox.size(), 1u);  // ...while frame 1 is now the queued one
  EXPECT_EQ(n_of(inbox[0]), 0u);
}

TEST(ChaosTransport, CloseConnDiscardsItsQueuedFrames) {
  FakeTransport fake;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.delay_min_ms = 50;
  opt.delay_max_ms = 50;
  ChaosTransport chaos(opt, &fake);

  const ConnId conn = fake.connect_client();
  EXPECT_TRUE(chaos.send(conn, ping(0)));
  chaos.close_conn(conn);
  fake.advance_ms(100);
  std::vector<TransportEvent> events;
  std::string error;
  ASSERT_TRUE(chaos.poll(0, events, &error)) << error;
  EXPECT_TRUE(fake.take_client_inbox(conn).empty());
  EXPECT_FALSE(fake.client_open(conn));
}

TEST(ChaosTransport, SameSeedSameFaultStream) {
  // A lossy run must be exactly reproducible from its SECBUS_CHAOS string:
  // the same seed over the same send sequence yields the same deliveries
  // and the same fault tallies.
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.drop = 0.3;
  opt.dup = 0.3;
  opt.seed = 42;

  auto run = [&opt]() {
    FakeTransport fake;
    ChaosTransport chaos(opt, &fake);
    const ConnId conn = fake.connect_client();
    std::vector<std::uint64_t> delivered;
    for (std::uint64_t n = 0; n < 64; ++n) {
      (void)chaos.send(conn, ping(n));
      for (const Json& j : fake.take_client_inbox(conn)) {
        delivered.push_back(n_of(j));
      }
    }
    return std::make_pair(delivered, chaos.stats());
  };

  const auto [first, first_stats] = run();
  const auto [second, second_stats] = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_stats.dropped, second_stats.dropped);
  EXPECT_EQ(first_stats.duplicated, second_stats.duplicated);
  EXPECT_EQ(first_stats.frames, 64u);
  // With p=0.3 over 64 frames, both fault kinds all-or-nothing would be
  // astronomically unlikely — the seed above exercises both paths.
  EXPECT_GT(first_stats.dropped, 0u);
  EXPECT_GT(first_stats.duplicated, 0u);
  EXPECT_LT(first_stats.dropped, 64u);
}

TEST(ChaosTransport, SetInnerRetargetsAndDropsPendingFrames) {
  FakeTransport fake1;
  FakeTransport fake2;
  ChaosNetOptions opt;
  opt.enabled = true;
  opt.delay_min_ms = 50;
  opt.delay_max_ms = 50;
  ChaosTransport chaos(opt, &fake1);

  const ConnId c1 = fake1.connect_client();
  EXPECT_TRUE(chaos.send(c1, ping(0)));  // queued against fake1

  // Reconnect: the old socket's in-flight frames died with it.
  chaos.set_inner(&fake2);
  const ConnId c2 = fake2.connect_client();
  fake1.advance_ms(100);
  fake2.advance_ms(100);
  EXPECT_TRUE(chaos.send(c2, ping(1)));  // delayed 50ms like any frame
  fake2.advance_ms(60);
  std::vector<TransportEvent> events;
  std::string error;
  ASSERT_TRUE(chaos.poll(0, events, &error)) << error;
  EXPECT_TRUE(fake1.take_client_inbox(c1).empty());
  const std::vector<Json> inbox = fake2.take_client_inbox(c2);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(n_of(inbox[0]), 1u);
}

TEST(ChaosTransport, NoInnerTransportFailsLoudly) {
  ChaosNetOptions opt;
  opt.enabled = true;
  ChaosTransport chaos(opt);
  EXPECT_FALSE(chaos.send(1, ping(0)));
  std::vector<TransportEvent> events;
  std::string error;
  EXPECT_FALSE(chaos.poll(0, events, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace secbus::net
