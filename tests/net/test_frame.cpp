// Frame codec: the fleet protocol's byte-level contract.
//
// The decoder must reassemble messages from any chunking of the stream
// (TCP guarantees order, not boundaries), must hand back multiple messages
// from one read, and must poison itself permanently on an oversized length
// prefix or an undecodable payload — resynchronizing inside a corrupted
// stream is impossible, so the only safe reaction is to drop the peer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "util/json.hpp"

namespace secbus::net {
namespace {

using util::Json;

Json sample_message(std::uint64_t n) {
  Json j = Json::object();
  j.set("type", Json::string("heartbeat"));
  j.set("shard", Json::number(n));
  j.set("note", Json::string("payload-" + std::to_string(n)));
  return j;
}

TEST(Frame, RoundTripSingleMessage) {
  const std::string wire = encode_frame(sample_message(7));
  ASSERT_GE(wire.size(), 4u);

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Json out;
  ASSERT_TRUE(decoder.next(out));
  std::uint64_t shard = 0;
  ASSERT_TRUE(out.find("shard")->to_u64(shard));
  EXPECT_EQ(shard, 7u);
  EXPECT_EQ(out.find("type")->as_string(), "heartbeat");
  EXPECT_FALSE(decoder.next(out));
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, ReassemblesFromByteSizedChunks) {
  std::string wire;
  for (std::uint64_t n = 0; n < 5; ++n) wire += encode_frame(sample_message(n));

  FrameDecoder decoder;
  std::vector<Json> got;
  for (const char byte : wire) {
    decoder.feed(&byte, 1);
    Json out;
    while (decoder.next(out)) got.push_back(std::move(out));
  }
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t n = 0; n < 5; ++n) {
    std::uint64_t shard = 0;
    ASSERT_TRUE(got[n].find("shard")->to_u64(shard));
    EXPECT_EQ(shard, n);
  }
  EXPECT_FALSE(decoder.corrupt());
}

TEST(Frame, MultipleMessagesInOneFeed) {
  std::string wire;
  for (std::uint64_t n = 0; n < 3; ++n) wire += encode_frame(sample_message(n));

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Json out;
  EXPECT_TRUE(decoder.next(out));
  EXPECT_TRUE(decoder.next(out));
  EXPECT_TRUE(decoder.next(out));
  EXPECT_FALSE(decoder.next(out));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, OversizedLengthPoisonsDecoder) {
  // Length prefix far beyond kMaxFrameBytes — e.g. the first 4 bytes of an
  // accidental HTTP request ("GET " = 0x47455420).
  const char bad[4] = {0x47, 0x45, 0x54, 0x20};
  FrameDecoder decoder;
  decoder.feed(bad, sizeof bad);
  Json out;
  EXPECT_FALSE(decoder.next(out));
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_FALSE(decoder.corrupt_reason().empty());

  // Poisoned for good: further feeds are ignored.
  const std::string wire = encode_frame(sample_message(1));
  decoder.feed(wire.data(), wire.size());
  EXPECT_FALSE(decoder.next(out));
  EXPECT_TRUE(decoder.corrupt());
}

TEST(Frame, UndecodablePayloadPoisonsDecoder) {
  const std::string payload = "this is not json";
  std::string wire;
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(static_cast<char>(payload.size()));
  wire += payload;

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Json out;
  EXPECT_FALSE(decoder.next(out));
  EXPECT_TRUE(decoder.corrupt());
}

TEST(Frame, IncompleteFrameIsNotAMessage) {
  const std::string wire = encode_frame(sample_message(3));
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size() - 1);
  Json out;
  EXPECT_FALSE(decoder.next(out));
  EXPECT_FALSE(decoder.corrupt());
  // The final byte completes it.
  decoder.feed(wire.data() + wire.size() - 1, 1);
  EXPECT_TRUE(decoder.next(out));
}

}  // namespace
}  // namespace secbus::net
