// HTTP responder: the defensive posture of the fleet observability
// endpoints. A valid GET round-trips through http_get; a malformed
// request line is a 400, any method but GET a 405, an oversized head a
// 431; a peer that disappears mid-request is dropped without disturbing
// later requests. All over real loopback sockets with the server serviced
// from a background thread, exactly like `campaign serve` services it
// between fleet steps.
#include <gtest/gtest.h>

#include "net/http.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace secbus::net {
namespace {

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(server_.listen(0, /*loopback_only=*/true, &error)) << error;
    ASSERT_NE(server_.bound_port(), 0);
    service_ = std::thread([this] {
      const HttpServer::Handler handler =
          [](const HttpRequest& request) {
            HttpResponse response;
            if (request.target == "/metrics") {
              response.body = "secbus_up 1\n";
            } else {
              response.status = 404;
              response.body = "not found\n";
            }
            return response;
          };
      while (!stop_.load()) {
        std::string error;
        if (!server_.poll(10, handler, &error)) break;
      }
    });
  }

  void TearDown() override {
    stop_.store(true);
    service_.join();
    server_.close();
  }

  // Writes `request` verbatim on a fresh connection and returns everything
  // the server sends back before closing. `close_early` abandons the
  // connection right after the write instead of reading.
  std::string raw_round_trip(const std::string& request,
                             bool close_early = false) {
    std::string error;
    Socket socket = tcp_connect("127.0.0.1", server_.bound_port(), &error);
    EXPECT_TRUE(socket.valid()) << error;
    if (!socket.valid()) return {};

    std::size_t sent = 0;
    const std::uint64_t deadline = steady_now_ms() + 5000;
    while (sent < request.size() && steady_now_ms() < deadline) {
      std::size_t n = 0;
      const IoStatus st =
          socket.write_some(request.data() + sent, request.size() - sent, n);
      if (st == IoStatus::kOk) {
        sent += n;
      } else if (st == IoStatus::kWouldBlock) {
        std::vector<PollResult> results;
        poll_fds({socket.fd()}, {true}, 50, results, &error);
      } else {
        break;  // server already slammed the door (oversized head)
      }
    }
    if (close_early) return {};

    std::string response;
    while (steady_now_ms() < deadline) {
      char buf[1024];
      std::size_t n = 0;
      const IoStatus st = socket.read_some(buf, sizeof buf, n);
      if (st == IoStatus::kOk) {
        response.append(buf, n);
      } else if (st == IoStatus::kWouldBlock) {
        std::vector<PollResult> results;
        poll_fds({socket.fd()}, {false}, 50, results, &error);
      } else {
        break;  // kClosed: response complete
      }
    }
    return response;
  }

  HttpServer server_;
  std::thread service_;
  std::atomic<bool> stop_{false};
};

TEST_F(HttpServerTest, ValidGetRoundTripsThroughHttpGet) {
  int status = 0;
  std::string body;
  std::string error;
  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/metrics",
                       &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "secbus_up 1\n");

  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/nope", &status,
                       &body, &error))
      << error;
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, NonGetMethodIs405) {
  const std::string response =
      raw_round_trip("POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 405", 0), 0u) << response;
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  const std::string response = raw_round_trip("complete garbage\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 400", 0), 0u) << response;
}

TEST_F(HttpServerTest, OversizedHeadIs431) {
  // A head that never ends and blows straight through the cap.
  std::string request = "GET /metrics HTTP/1.0\r\nX-Filler: ";
  request.append(kMaxHttpRequestBytes, 'a');
  const std::string response = raw_round_trip(request);
  EXPECT_EQ(response.rfind("HTTP/1.0 431", 0), 0u) << response;
}

TEST_F(HttpServerTest, PeerVanishingMidRequestIsDroppedSilently) {
  // Half a request line, then gone.
  (void)raw_round_trip("GET /met", /*close_early=*/true);
  // The server survives and keeps answering.
  int status = 0;
  std::string body;
  std::string error;
  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/metrics",
                       &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  // The abandoned connection drains away rather than leaking.
  const std::uint64_t deadline = steady_now_ms() + 5000;
  while (server_.open_connections() != 0 && steady_now_ms() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_.open_connections(), 0u);
}

TEST(HttpGet, ConnectFailureReportsError) {
  int status = 0;
  std::string body;
  std::string error;
  // Port 1 on loopback: nothing listens there.
  EXPECT_FALSE(http_get("127.0.0.1", 1, "/", &status, &body, &error, 500));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace secbus::net

#endif  // __unix__ || __APPLE__
