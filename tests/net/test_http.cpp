// HTTP responder: the defensive posture of the fleet observability
// endpoints. A valid GET round-trips through http_get; a malformed
// request line is a 400, any method but GET a 405, an oversized head a
// 431; a peer that disappears mid-request is dropped without disturbing
// later requests. All over real loopback sockets with the server serviced
// from a background thread, exactly like `campaign serve` services it
// between fleet steps.
#include <gtest/gtest.h>

#include "net/http.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace secbus::net {
namespace {

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(server_.listen(0, /*loopback_only=*/true, &error)) << error;
    ASSERT_NE(server_.bound_port(), 0);
    service_ = std::thread([this] {
      const HttpServer::Handler handler =
          [](const HttpRequest& request) {
            HttpResponse response;
            if (request.target == "/metrics") {
              response.body = "secbus_up 1\n";
            } else {
              response.status = 404;
              response.body = "not found\n";
            }
            return response;
          };
      while (!stop_.load()) {
        std::string error;
        if (!server_.poll(10, handler, &error)) break;
      }
    });
  }

  void TearDown() override {
    stop_.store(true);
    service_.join();
    server_.close();
  }

  // Writes `request` verbatim on a fresh connection and returns everything
  // the server sends back before closing. `close_early` abandons the
  // connection right after the write instead of reading.
  std::string raw_round_trip(const std::string& request,
                             bool close_early = false) {
    std::string error;
    Socket socket = tcp_connect("127.0.0.1", server_.bound_port(), &error);
    EXPECT_TRUE(socket.valid()) << error;
    if (!socket.valid()) return {};

    std::size_t sent = 0;
    const std::uint64_t deadline = steady_now_ms() + 5000;
    while (sent < request.size() && steady_now_ms() < deadline) {
      std::size_t n = 0;
      const IoStatus st =
          socket.write_some(request.data() + sent, request.size() - sent, n);
      if (st == IoStatus::kOk) {
        sent += n;
      } else if (st == IoStatus::kWouldBlock) {
        std::vector<PollResult> results;
        poll_fds({socket.fd()}, {true}, 50, results, &error);
      } else {
        break;  // server already slammed the door (oversized head)
      }
    }
    if (close_early) return {};

    std::string response;
    while (steady_now_ms() < deadline) {
      char buf[1024];
      std::size_t n = 0;
      const IoStatus st = socket.read_some(buf, sizeof buf, n);
      if (st == IoStatus::kOk) {
        response.append(buf, n);
      } else if (st == IoStatus::kWouldBlock) {
        std::vector<PollResult> results;
        poll_fds({socket.fd()}, {false}, 50, results, &error);
      } else {
        break;  // kClosed: response complete
      }
    }
    return response;
  }

  HttpServer server_;
  std::thread service_;
  std::atomic<bool> stop_{false};
};

TEST_F(HttpServerTest, ValidGetRoundTripsThroughHttpGet) {
  int status = 0;
  std::string body;
  std::string error;
  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/metrics",
                       &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "secbus_up 1\n");

  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/nope", &status,
                       &body, &error))
      << error;
  EXPECT_EQ(status, 404);
}

TEST_F(HttpServerTest, NonGetMethodIs405) {
  const std::string response =
      raw_round_trip("POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 405", 0), 0u) << response;
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  const std::string response = raw_round_trip("complete garbage\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 400", 0), 0u) << response;
}

TEST_F(HttpServerTest, OversizedHeadIs431) {
  // A head that never ends and blows straight through the cap.
  std::string request = "GET /metrics HTTP/1.0\r\nX-Filler: ";
  request.append(kMaxHttpRequestBytes, 'a');
  const std::string response = raw_round_trip(request);
  EXPECT_EQ(response.rfind("HTTP/1.0 431", 0), 0u) << response;
}

TEST_F(HttpServerTest, PeerVanishingMidRequestIsDroppedSilently) {
  // Half a request line, then gone.
  (void)raw_round_trip("GET /met", /*close_early=*/true);
  // The server survives and keeps answering.
  int status = 0;
  std::string body;
  std::string error;
  ASSERT_TRUE(http_get("127.0.0.1", server_.bound_port(), "/metrics",
                       &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  // The abandoned connection drains away rather than leaking.
  const std::uint64_t deadline = steady_now_ms() + 5000;
  while (server_.open_connections() != 0 && steady_now_ms() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_.open_connections(), 0u);
}

TEST(HttpSlowLoris, IdleConnectionIsDroppedAtTheDeadline) {
  // A client that opens a connection, trickles half a request line and
  // then stalls must be evicted once the idle deadline passes — it cannot
  // pin a connection slot on the single-threaded server. Standalone (not
  // the fixture) so the shortened timeout is set before the service
  // thread starts.
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.listen(0, /*loopback_only=*/true, &error)) << error;
  server.set_idle_timeout_ms(200);
  std::atomic<bool> stop{false};
  std::thread service([&] {
    const HttpServer::Handler handler = [](const HttpRequest&) {
      return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    };
    while (!stop.load()) {
      std::string poll_error;
      if (!server.poll(10, handler, &poll_error)) break;
    }
  });

  Socket loris = tcp_connect("127.0.0.1", server.bound_port(), &error);
  ASSERT_TRUE(loris.valid()) << error;
  const std::string partial = "GET /metr";  // head never completes
  std::size_t sent = 0;
  while (sent < partial.size()) {
    std::size_t n = 0;
    const IoStatus st =
        loris.write_some(partial.data() + sent, partial.size() - sent, n);
    if (st == IoStatus::kOk) {
      sent += n;
      continue;
    }
    ASSERT_EQ(st, IoStatus::kWouldBlock);
    std::vector<PollResult> results;
    poll_fds({loris.fd()}, {true}, 50, results, &error);
  }

  // The server noticed us, then gives up on us at the deadline — while the
  // socket stays open on our side the whole time.
  const std::uint64_t deadline = steady_now_ms() + 5000;
  while (server.open_connections() != 0 && steady_now_ms() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.open_connections(), 0u);

  // The eviction reaches the loris as a close, and the server still
  // answers well-behaved clients.
  bool closed = false;
  while (steady_now_ms() < deadline) {
    char buf[64];
    std::size_t n = 0;
    const IoStatus st = loris.read_some(buf, sizeof buf, n);
    if (st == IoStatus::kClosed || st == IoStatus::kError) {
      closed = true;
      break;
    }
    std::vector<PollResult> results;
    poll_fds({loris.fd()}, {false}, 50, results, &error);
  }
  EXPECT_TRUE(closed);
  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get("127.0.0.1", server.bound_port(), "/", &status, &body,
                       &error))
      << error;
  EXPECT_EQ(status, 200);

  stop.store(true);
  service.join();
  server.close();
}

TEST(HttpGet, ConnectFailureReportsError) {
  int status = 0;
  std::string body;
  std::string error;
  // Port 1 on loopback: nothing listens there.
  EXPECT_FALSE(http_get("127.0.0.1", 1, "/", &status, &body, &error, 500));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace secbus::net

#endif  // __unix__ || __APPLE__
