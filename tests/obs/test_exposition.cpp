// Prometheus text exposition: name sanitization, the counter/gauge TYPE
// split, deterministic ordering, and a golden file locking the exact
// bytes of the /metrics body for a representative fleet registry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/exposition.hpp"
#include "obs/registry.hpp"

namespace secbus::obs {
namespace {

TEST(PrometheusName, PrefixesAndSanitizes) {
  EXPECT_EQ(prometheus_name("fleet.worker0.net.frames_in"),
            "secbus_fleet_worker0_net_frames_in");
  EXPECT_EQ(prometheus_name("core.format_cache.hit_rate"),
            "secbus_core_format_cache_hit_rate");
  // Every character outside [A-Za-z0-9_] maps to '_'.
  EXPECT_EQ(prometheus_name("a-b/c d:e"), "secbus_a_b_c_d_e");
  EXPECT_EQ(prometheus_name(""), "secbus_");
}

TEST(PrometheusText, EmptyRegistryRendersEmpty) {
  Registry reg;
  EXPECT_EQ(prometheus_text(reg), "");
}

TEST(PrometheusText, CountersAndGaugesGetDistinctTypes) {
  Registry reg;
  reg.counter("jobs", 42);
  reg.gauge("rate", 1.5);
  EXPECT_EQ(prometheus_text(reg),
            "# TYPE secbus_jobs counter\n"
            "secbus_jobs 42\n"
            "# TYPE secbus_rate gauge\n"
            "secbus_rate 1.5\n");
}

TEST(PrometheusText, OrderIsByRegistryNameNotInsertion) {
  Registry forward;
  forward.counter("a.first", 1);
  forward.counter("b.second", 2);
  Registry backward;
  backward.counter("b.second", 2);
  backward.counter("a.first", 1);
  EXPECT_EQ(prometheus_text(forward), prometheus_text(backward));
  EXPECT_LT(prometheus_text(forward).find("secbus_a_first"),
            prometheus_text(forward).find("secbus_b_second"));
}

TEST(PrometheusText, CountersAreExactAndGaugesRoundTrip) {
  Registry reg;
  reg.counter("big", 18446744073709551615ull);  // UINT64_MAX survives
  reg.gauge("third", 1.0 / 3.0);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("secbus_big 18446744073709551615\n"),
            std::string::npos);
  // Gauges print with util::Json's shortest-round-trip formatting.
  EXPECT_NE(text.find("secbus_third " +
                      util::Json::number(1.0 / 3.0).dump(0) + "\n"),
            std::string::npos);
}

// A representative fleet exposition — worker snapshots merged under
// fleet.worker<i>.* plus summed fleet.total.* — pinned byte-for-byte.
// Regenerate deliberately with SECBUS_UPDATE_GOLDEN=1 after a writer
// change, and eyeball the diff: the file is the /metrics format contract.
Registry golden_registry() {
  Registry reg;
  reg.counter("fleet.jobs", 30);
  reg.counter("fleet.shards", 3);
  reg.counter("fleet.shards.done", 1);
  reg.gauge("fleet.shards.leased", 2);
  reg.gauge("fleet.workers", 2);
  reg.counter("fleet.server.net.frames_in", 17);
  reg.counter("fleet.server.net.bytes_in", 2048);
  reg.counter("fleet.worker0.worker.jobs_done", 10);
  reg.gauge("fleet.worker0.worker.jobs_per_sec", 12.5);
  reg.counter("fleet.worker0.net.frames_out", 9);
  reg.counter("fleet.worker0.crypto.backend_id", 2);
  reg.counter("fleet.worker1.worker.jobs_done", 4);
  reg.gauge("fleet.worker1.worker.jobs_per_sec", 8.25);
  reg.counter("fleet.worker1.net.frames_out", 5);
  reg.counter("fleet.worker1.crypto.backend_id", 2);
  reg.counter("fleet.total.worker.jobs_done", 14);
  reg.gauge("fleet.total.worker.jobs_per_sec", 20.75);
  reg.counter("fleet.total.net.frames_out", 14);
  return reg;
}

TEST(PrometheusText, MatchesGoldenFile) {
  const std::string path = std::string(SECBUS_REPO_DIR) +
                           "/tests/data/metrics_exposition_golden.txt";
  const std::string text = prometheus_text(golden_registry());

  if (std::getenv("SECBUS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << text;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing; regenerate with SECBUS_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str());
}

}  // namespace
}  // namespace secbus::obs
