#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace secbus::obs {
namespace {

TEST(Registry, CountersAndGauges) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("bus.seg0.grants", 42);
  reg.gauge("bus.seg0.occupancy", 0.5);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counter_value("bus.seg0.grants"), 42u);
  EXPECT_DOUBLE_EQ(reg.value("bus.seg0.occupancy"), 0.5);
  // value() works for both kinds; counter_value() only for counters.
  EXPECT_DOUBLE_EQ(reg.value("bus.seg0.grants"), 42.0);
  EXPECT_EQ(reg.counter_value("bus.seg0.occupancy"), 0u);
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.value("nope"), 0.0);
}

TEST(Registry, CounterIsU64Exact) {
  Registry reg;
  const std::uint64_t big = 0xFFFF'FFFF'FFFF'FFFEull;  // not double-exact
  reg.counter("c", big);
  EXPECT_EQ(reg.counter_value("c"), big);

  Registry back;
  ASSERT_TRUE(Registry::from_json(reg.to_json(), back));
  EXPECT_EQ(back.counter_value("c"), big);
}

TEST(Registry, StatExpansion) {
  util::RunningStat s;
  s.add(10.0);
  s.add(20.0);

  Registry reg;
  reg.stat("ip.cpu0.latency", s);
  EXPECT_EQ(reg.counter_value("ip.cpu0.latency.count"), 2u);
  EXPECT_DOUBLE_EQ(reg.value("ip.cpu0.latency.mean"), 15.0);
  EXPECT_DOUBLE_EQ(reg.value("ip.cpu0.latency.min"), 10.0);
  EXPECT_DOUBLE_EQ(reg.value("ip.cpu0.latency.max"), 20.0);

  // Empty stats stay compact: count only.
  Registry empty;
  empty.stat("x", util::RunningStat{});
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.counter_value("x.count"), 0u);
}

TEST(Registry, HistExpansion) {
  util::LatencyHistogram h;
  for (std::uint64_t v : {5u, 5u, 7u, 9u}) h.add(v);

  Registry reg;
  reg.hist("bus.seg0.latency", h);
  EXPECT_EQ(reg.counter_value("bus.seg0.latency.count"), 4u);
  EXPECT_EQ(reg.counter_value("bus.seg0.latency.p50"), h.p50());
  EXPECT_EQ(reg.counter_value("bus.seg0.latency.p99"), h.p99());
  EXPECT_EQ(reg.counter_value("bus.seg0.latency.max"), 9u);
}

TEST(Registry, ToJsonSortsNames) {
  Registry reg;
  reg.counter("z.last", 1);
  reg.counter("a.first", 2);
  reg.gauge("m.middle", 3.0);
  const std::string text = reg.to_json().dump(0);
  const auto a = text.find("a.first");
  const auto m = text.find("m.middle");
  const auto z = text.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(Registry, JsonRoundTripIsByteStable) {
  Registry reg;
  reg.counter("core.lf_cpu0.passed", 123);
  reg.counter("core.lf_cpu0.blocked", 0);
  reg.gauge("bus.seg0.occupancy", 0.125);
  reg.gauge("ip.cpu0.latency.mean", 17.5);

  const std::string first = reg.to_json().dump(0);
  Registry back;
  std::string error;
  ASSERT_TRUE(Registry::from_json(reg.to_json(), back, &error)) << error;
  EXPECT_EQ(back.to_json().dump(0), first);

  // Integer lexemes restore as counters, fractions as gauges.
  EXPECT_EQ(back.counter_value("core.lf_cpu0.passed"), 123u);
  EXPECT_DOUBLE_EQ(back.value("bus.seg0.occupancy"), 0.125);
}

TEST(Registry, FromJsonRejectsNonObject) {
  Registry out;
  std::string error;
  EXPECT_FALSE(Registry::from_json(util::Json::number(std::uint64_t{1}), out,
                                   &error));
  EXPECT_FALSE(error.empty());
}

TEST(Registry, ClearEmpties) {
  Registry reg;
  reg.counter("a", 1);
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.to_json().dump(0), "{}");
}

}  // namespace
}  // namespace secbus::obs
