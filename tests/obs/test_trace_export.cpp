// Chrome trace-event writer: span reconstruction, golden-file byte
// stability, and the acceptance cross-check — a traced ciphered-mesh run's
// exported spans must reconcile exactly with the run's own counters.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace secbus::obs {
namespace {

using sim::EventTrace;
using sim::TraceEvent;
using sim::TraceKind;

// A hand-written stream exercising every writer feature: two firewalls, a
// bus segment, an LCF, a completed transaction, a discarded one, an alert,
// and one check left open (unmatched).
EventTrace synthetic_trace() {
  EventTrace trace(64);
  trace.record({1, TraceKind::kTransIssued, "lf_cpu0", 1, 0x1000, 0});
  trace.record({1, TraceKind::kSecpolReq, "lf_cpu0", 1, 0x1000, 4});
  trace.record({3, TraceKind::kCheckResult, "lf_cpu0", 1, 0x1000, 0});
  trace.record({4, TraceKind::kTransOnBus, "bus.seg0", 1, 0x1000, 16});
  trace.record({9, TraceKind::kTransComplete, "bus.seg0", 1, 0x1000, 0});
  trace.record({12, TraceKind::kTransIssued, "lf_cpu1", 2, 0x2000, 0});
  trace.record({12, TraceKind::kSecpolReq, "lf_cpu1", 2, 0x2000, 4});
  trace.record({14, TraceKind::kCheckResult, "lf_cpu1", 2, 0x2000, 3});
  trace.record({14, TraceKind::kTransDiscarded, "lf_cpu1", 2, 0x2000, 3});
  trace.record({14, TraceKind::kAlert, "lf_cpu1", 2, 0x2000, 3});
  trace.record({20, TraceKind::kCipherOp, "lcf_ddr", 1, 0x2000, 2});
  trace.record({25, TraceKind::kSecpolReq, "lf_cpu0", 3, 0x3000, 4});
  return trace;
}

TEST(ChromeTrace, SyntheticSpanReconstruction) {
  TraceExportStats st;
  const std::string text = chrome_trace_json(synthetic_trace(), &st);

  EXPECT_EQ(st.tracks, 4u);  // lf_cpu0, bus.seg0, lf_cpu1, lcf_ddr
  EXPECT_EQ(st.check_spans, 2u);
  EXPECT_EQ(st.bus_spans, 1u);
  EXPECT_EQ(st.lifecycle_spans, 2u);  // trans 1 completed, trans 2 discarded
  EXPECT_EQ(st.instants, 3u);  // discard + alert + cipher op
  EXPECT_EQ(st.alert_instants, 1u);
  EXPECT_EQ(st.unmatched, 1u);  // trans 3's check never resolved

  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(text, doc, &error)) << error;
  const util::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 1 process + 4 thread metadata, 3 X spans, 3 instants, 2 b/e pairs.
  EXPECT_EQ(events->size(), 1u + 4u + 3u + 3u + 4u);
}

TEST(ChromeTrace, OutputIsByteStable) {
  const std::string a = chrome_trace_json(synthetic_trace());
  const std::string b = chrome_trace_json(synthetic_trace());
  EXPECT_EQ(a, b);
}

TEST(ChromeTrace, EmptyTraceIsValidJson) {
  EventTrace trace;  // capacity 0: recording disabled
  TraceExportStats st;
  const std::string text = chrome_trace_json(trace, &st);
  EXPECT_EQ(st.tracks, 0u);
  util::Json doc;
  std::string error;
  EXPECT_TRUE(util::Json::parse(text, doc, &error)) << error;
}

// Golden file: the synthetic trace always serializes to the committed
// bytes. Regenerate deliberately with SECBUS_UPDATE_GOLDEN=1 after a
// writer change, and eyeball the diff — the file is the format contract.
TEST(ChromeTrace, MatchesGoldenFile) {
  const std::string path =
      std::string(SECBUS_REPO_DIR) + "/tests/data/trace_golden.json";
  const std::string text = chrome_trace_json(synthetic_trace());

  if (std::getenv("SECBUS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << text;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing; regenerate with SECBUS_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str());
}

TEST(ChromeTrace, WriteToFileRoundTrips) {
  const std::string path = testing::TempDir() + "secbus_trace_out.json";
  TraceExportStats st;
  std::string error;
  ASSERT_TRUE(write_chrome_trace(path, synthetic_trace(), &error, &st))
      << error;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream written;
  written << in.rdbuf();
  EXPECT_EQ(written.str(), chrome_trace_json(synthetic_trace()));
  std::remove(path.c_str());
}

// Acceptance: a traced ciphered-mesh run under a hijack exports spans that
// reconcile exactly with the run's own counters — every alert becomes an
// alert instant, every completed bus transfer a span, nothing dropped.
TEST(ChromeTrace, TracedMeshRunReconcilesWithSocCounters) {
  const scenario::NamedScenario* named =
      scenario::find_scenario("mesh2x2_ciphered");
  ASSERT_NE(named, nullptr);
  scenario::ScenarioSpec spec = named->spec;
  spec.attack.kind = scenario::AttackKind::kHijack;

  TraceExportStats st;
  std::string text;
  std::uint64_t on_bus = 0;
  std::uint64_t completes = 0;
  std::uint64_t checks = 0;
  std::uint64_t alerts_traced = 0;

  scenario::RunHooks hooks;
  hooks.trace_capacity = std::size_t{1} << 20;  // whole run fits the ring
  hooks.inspect = [&](soc::Soc& sys, const scenario::JobResult&) {
    const sim::EventTrace& trace = sys.trace();
    on_bus = trace.count_of(TraceKind::kTransOnBus);
    completes = trace.count_of(TraceKind::kTransComplete);
    checks = trace.count_of(TraceKind::kCheckResult);
    alerts_traced = trace.count_of(TraceKind::kAlert);
    ASSERT_LE(trace.total_recorded(), std::size_t{1} << 20)
        << "ring overflowed; grow trace_capacity";
    text = chrome_trace_json(trace, &st);
  };
  const scenario::JobResult r = scenario::run_scenario(spec, hooks);

  ASSERT_FALSE(text.empty());
  EXPECT_GT(st.bus_spans, 0u);
  EXPECT_GT(st.check_spans, 0u);
  EXPECT_GT(r.soc.alerts, 0u) << "hijack should raise alerts";

  // Exact reconciliation: nothing unmatched, so every lifecycle event
  // paired up and the span counts equal the event counts.
  EXPECT_EQ(st.unmatched, 0u);
  EXPECT_EQ(st.bus_spans, completes);
  EXPECT_EQ(st.bus_spans, on_bus);
  EXPECT_EQ(st.check_spans, checks);
  EXPECT_EQ(st.alert_instants, alerts_traced);
  EXPECT_EQ(st.alert_instants, r.soc.alerts);

  util::Json doc;
  std::string error;
  ASSERT_TRUE(util::Json::parse(text, doc, &error)) << error;
}

}  // namespace
}  // namespace secbus::obs
