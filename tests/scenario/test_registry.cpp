// Registry invariants: every seeded scenario is findable, self-consistent,
// and (for the cheap ones) actually runnable with the documented outcome.
#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "scenario/scenario.hpp"

namespace secbus::scenario {
namespace {

TEST(Registry, SeedsAtLeastTenScenarios) {
  EXPECT_GE(builtin_scenarios().size(), 10u);
}

TEST(Registry, EveryEntryIsFindableByName) {
  for (const NamedScenario& s : builtin_scenarios()) {
    const NamedScenario* found = find_scenario(s.spec.name);
    ASSERT_NE(found, nullptr) << s.spec.name;
    EXPECT_EQ(found, &s) << s.spec.name;
  }
}

TEST(Registry, NamesAreUniqueAndDescribed) {
  std::set<std::string> names;
  for (const NamedScenario& s : builtin_scenarios()) {
    EXPECT_TRUE(names.insert(s.spec.name).second)
        << "duplicate name " << s.spec.name;
    EXPECT_FALSE(s.spec.description.empty()) << s.spec.name;
    EXPECT_GE(s.job_count(), 1u) << s.spec.name;
    EXPECT_GT(s.spec.max_cycles, 0u) << s.spec.name;
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_EQ(find_scenario(""), nullptr);
}

TEST(Registry, ExpectedCoreScenariosPresent) {
  for (const char* name :
       {"section5", "baseline-none", "baseline-centralized", "cipher-only",
        "hijack", "external-attacker", "flood-dos", "flood-throttled",
        "reconfig-lockdown", "distributed-vs-centralized", "line-size-sweep",
        "policy-scaling"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
}

TEST(Registry, DistributedVsCentralizedIsTheFullModeProtectionCross) {
  const NamedScenario* s = find_scenario("distributed-vs-centralized");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->axes.security.size(), 3u);
  EXPECT_EQ(s->axes.protection.size(), 3u);
  EXPECT_EQ(s->job_count(), 9u);
}

TEST(Registry, HijackScenarioDetectsAndContains) {
  const NamedScenario* s = find_scenario("hijack");
  ASSERT_NE(s, nullptr);
  const JobResult r = run_scenario(s->spec);
  EXPECT_TRUE(r.soc.completed);
  EXPECT_TRUE(r.attack_ran);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.contained);
  EXPECT_GT(r.soc.alerts, 0u);
  EXPECT_GT(r.fw_blocked, 0u);
}

TEST(Registry, SpoofUndetectedOnPlaintextDetectedOnFull) {
  const NamedScenario* s = find_scenario("external-attacker");
  ASSERT_NE(s, nullptr);

  ScenarioSpec plaintext = s->spec;
  plaintext.soc.protection = soc::ProtectionLevel::kPlaintext;
  const JobResult unprotected = run_scenario(plaintext);
  EXPECT_TRUE(unprotected.attack_ran);
  EXPECT_FALSE(unprotected.detected);
  EXPECT_FALSE(unprotected.victim_data_intact);  // spoof silently corrupts

  ScenarioSpec full = s->spec;
  full.soc.protection = soc::ProtectionLevel::kFull;
  const JobResult protected_run = run_scenario(full);
  EXPECT_TRUE(protected_run.detected);
  EXPECT_TRUE(protected_run.victim_read_aborted);  // integrity abort
}

TEST(Registry, ThrottledFloodBlocksTraffic) {
  const NamedScenario* s = find_scenario("flood-throttled");
  ASSERT_NE(s, nullptr);
  const JobResult r = run_scenario(s->spec);
  EXPECT_TRUE(r.soc.completed);
  EXPECT_GT(r.flood_blocked, 0u);
  EXPECT_GT(r.violation_count(core::Violation::kRateLimited), 0u);
}

}  // namespace
}  // namespace secbus::scenario
