// JobResult JSON round-trip: the merge path's bit-fidelity contract.
// Every field — IEEE doubles, streaming moments, histogram buckets,
// never-detected sentinels — must survive serialize -> parse -> serialize
// unchanged, because merged shard reports are promised byte-identical to
// in-process ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "scenario/report.hpp"
#include "scenario/result_io.hpp"
#include "scenario/scenario.hpp"
#include "soc/presets.hpp"

namespace secbus::scenario {
namespace {

JobResult adversarial_result() {
  JobResult r;
  r.index = 41;
  r.name = "round-trip";
  r.variant = "attack=hijack,seed=42";
  r.cpus = 7;
  r.security = soc::to_string(soc::SecurityMode::kDistributed);
  r.protection = soc::to_string(soc::ProtectionLevel::kFull);
  r.seed = 0xDEADBEEFCAFEF00DULL;  // needs exact u64 round-trip
  r.extra_rules = 17;
  r.line_bytes = 64;
  r.attack = to_string(AttackKind::kExternalReplay);
  r.topology = "mesh2x2";
  r.segments = 4;
  r.max_hops = 2;

  r.soc.cycles = 123'456'789;
  r.soc.completed = true;
  r.soc.transactions_ok = 1'000'000;
  r.soc.transactions_failed = 3;
  r.soc.alerts = 11;
  // Doubles chosen to have no short decimal representation.
  r.soc.avg_access_latency = 1.0 / 3.0;
  r.soc.bus_occupancy = 0.1 + 0.2;  // the classic 0.30000000000000004
  r.soc.bytes_moved = 1ULL << 40;
  r.soc.latency_p50 = 17;
  r.soc.latency_p95 = 230;
  r.soc.latency_p99 = 999;
  r.soc.latency_max = 20'000;

  for (int i = 0; i < 1000; ++i) r.cpu_latency.add(std::sqrt(i) * 0.7);
  r.latency_hist.add(3);
  r.latency_hist.add(3);
  r.latency_hist.add(500);
  r.latency_hist.add(99'999);  // overflow bucket, exact sum preserved

  r.fw_passed = 55;
  r.fw_blocked = 5;
  r.fw_check_cycles = 600;
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    r.violations[i] = 100 + i;
  }

  r.attack_ran = true;
  r.detected = false;
  r.attack_cycle = 4242;
  r.detection_cycle = sim::kNeverCycle;  // u64 max must survive
  r.detection_latency = 0;
  r.contained = true;
  r.containment_checked = true;
  r.victim_data_intact = false;
  r.victim_checked = true;
  r.victim_read_aborted = true;
  r.flood_completed = 400;
  r.flood_blocked = 395;

  r.manager_queue_wait = 2.0 / 7.0;
  r.sb_check_latency = 12;

  r.lcf.protected_reads = 123;
  r.lcf.protected_writes = 456;
  r.lcf.read_modify_writes = 78;
  r.lcf.cc_cycles = 9'000;
  r.lcf.ic_cycles = 21'000;
  r.lcf.tree_depth = 11;
  return r;
}

void expect_bit_identical(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.variant, b.variant);
  EXPECT_EQ(a.cpus, b.cpus);
  EXPECT_STREQ(a.security, b.security);
  EXPECT_STREQ(a.protection, b.protection);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.extra_rules, b.extra_rules);
  EXPECT_EQ(a.line_bytes, b.line_bytes);
  EXPECT_STREQ(a.attack, b.attack);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.max_hops, b.max_hops);

  EXPECT_EQ(a.soc.cycles, b.soc.cycles);
  EXPECT_EQ(a.soc.completed, b.soc.completed);
  EXPECT_EQ(a.soc.transactions_ok, b.soc.transactions_ok);
  EXPECT_EQ(a.soc.transactions_failed, b.soc.transactions_failed);
  EXPECT_EQ(a.soc.alerts, b.soc.alerts);
  // Bit equality, not epsilon equality: memcmp the doubles.
  EXPECT_EQ(std::memcmp(&a.soc.avg_access_latency, &b.soc.avg_access_latency,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&a.soc.bus_occupancy, &b.soc.bus_occupancy,
                        sizeof(double)),
            0);
  EXPECT_EQ(a.soc.bytes_moved, b.soc.bytes_moved);
  EXPECT_EQ(a.soc.latency_p50, b.soc.latency_p50);
  EXPECT_EQ(a.soc.latency_p95, b.soc.latency_p95);
  EXPECT_EQ(a.soc.latency_p99, b.soc.latency_p99);
  EXPECT_EQ(a.soc.latency_max, b.soc.latency_max);

  const util::RunningStat::Snapshot sa = a.cpu_latency.snapshot();
  const util::RunningStat::Snapshot sb = b.cpu_latency.snapshot();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(std::memcmp(&sa, &sb, sizeof sa), 0);

  EXPECT_EQ(a.latency_hist.count(), b.latency_hist.count());
  EXPECT_EQ(a.latency_hist.overflow(), b.latency_hist.overflow());
  EXPECT_EQ(a.latency_hist.sum(), b.latency_hist.sum());
  EXPECT_EQ(a.latency_hist.min(), b.latency_hist.min());
  EXPECT_EQ(a.latency_hist.max(), b.latency_hist.max());
  EXPECT_EQ(a.latency_hist.p50(), b.latency_hist.p50());
  EXPECT_EQ(a.latency_hist.p99(), b.latency_hist.p99());

  EXPECT_EQ(a.fw_passed, b.fw_passed);
  EXPECT_EQ(a.fw_blocked, b.fw_blocked);
  EXPECT_EQ(a.fw_check_cycles, b.fw_check_cycles);
  EXPECT_EQ(a.violations, b.violations);

  EXPECT_EQ(a.attack_ran, b.attack_ran);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.attack_cycle, b.attack_cycle);
  EXPECT_EQ(a.detection_cycle, b.detection_cycle);
  EXPECT_EQ(a.detection_latency, b.detection_latency);
  EXPECT_EQ(a.contained, b.contained);
  EXPECT_EQ(a.containment_checked, b.containment_checked);
  EXPECT_EQ(a.victim_data_intact, b.victim_data_intact);
  EXPECT_EQ(a.victim_checked, b.victim_checked);
  EXPECT_EQ(a.victim_read_aborted, b.victim_read_aborted);
  EXPECT_EQ(a.flood_completed, b.flood_completed);
  EXPECT_EQ(a.flood_blocked, b.flood_blocked);

  EXPECT_EQ(std::memcmp(&a.manager_queue_wait, &b.manager_queue_wait,
                        sizeof(double)),
            0);
  EXPECT_EQ(a.sb_check_latency, b.sb_check_latency);

  EXPECT_EQ(a.lcf.protected_reads, b.lcf.protected_reads);
  EXPECT_EQ(a.lcf.protected_writes, b.lcf.protected_writes);
  EXPECT_EQ(a.lcf.read_modify_writes, b.lcf.read_modify_writes);
  EXPECT_EQ(a.lcf.cc_cycles, b.lcf.cc_cycles);
  EXPECT_EQ(a.lcf.ic_cycles, b.lcf.ic_cycles);
  EXPECT_EQ(a.lcf.tree_depth, b.lcf.tree_depth);
}

TEST(ResultIo, AdversarialResultRoundTripsBitExactly) {
  const JobResult original = adversarial_result();
  const util::Json j = job_result_to_json(original);
  JobResult parsed;
  std::string error;
  ASSERT_TRUE(job_result_from_json(j, parsed, &error)) << error;
  expect_bit_identical(original, parsed);
}

TEST(ResultIo, SerializationIsAFixedPoint) {
  // serialize(parse(serialize(x))) == serialize(x): the strongest cheap
  // probe that nothing drifts per round trip.
  const JobResult original = adversarial_result();
  const std::string once = job_result_to_json(original).dump(0);
  JobResult parsed;
  ASSERT_TRUE(job_result_from_json(job_result_to_json(original), parsed,
                                   nullptr));
  EXPECT_EQ(job_result_to_json(parsed).dump(0), once);
}

TEST(ResultIo, DefaultConstructedResultRoundTrips) {
  const JobResult original;  // empty stats, "" security, "none" attack
  JobResult parsed;
  std::string error;
  ASSERT_TRUE(
      job_result_from_json(job_result_to_json(original), parsed, &error))
      << error;
  expect_bit_identical(original, parsed);
}

TEST(ResultIo, RealScenarioResultRoundTripsAndAggregatesIdentically) {
  ScenarioSpec spec;
  spec.name = "result-io-live";
  spec.soc = soc::tiny_test_config();
  spec.attack.kind = AttackKind::kHijack;
  spec.max_cycles = 2'000'000;
  const JobResult original = run_scenario(spec);

  JobResult parsed;
  std::string error;
  ASSERT_TRUE(
      job_result_from_json(job_result_to_json(original), parsed, &error))
      << error;
  expect_bit_identical(original, parsed);

  // The aggregation downstream of the merge must not see any difference.
  const std::vector<JobResult> a{original};
  const std::vector<JobResult> b{parsed};
  EXPECT_EQ(batch_json("x", a, BatchAggregate::from(a)),
            batch_json("x", b, BatchAggregate::from(b)));
}

TEST(ResultIo, RejectsMalformedDocuments) {
  JobResult parsed;
  std::string error;
  EXPECT_FALSE(job_result_from_json(util::Json::number(std::uint64_t{3}),
                                    parsed, &error));

  util::Json j = job_result_to_json(adversarial_result());
  // Corrupt one enum echo.
  j.set("protection", util::Json::string("super-secret"));
  error.clear();
  EXPECT_FALSE(job_result_from_json(j, parsed, &error));
  EXPECT_NE(error.find("protection"), std::string::npos);
}

}  // namespace
}  // namespace secbus::scenario
