// Batch-runner determinism: the parallel thread pool must be an execution
// detail, invisible in the results. N-thread and 1-thread batches over the
// same job list produce bit-identical per-job SocResults and security
// metrics, in submission order.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "scenario/report.hpp"
#include "scenario/sweep.hpp"
#include "soc/presets.hpp"
#include "util/csv.hpp"

namespace secbus::scenario {
namespace {

// A cheap but non-trivial job list: tiny SoC crossed over protection levels
// and seeds, with one staged attack variant in the mix.
std::vector<ScenarioSpec> make_jobs() {
  ScenarioSpec base;
  base.name = "runner-test";
  base.soc = soc::tiny_test_config();
  base.soc.transactions_per_cpu = 30;
  base.max_cycles = 2'000'000;

  SweepAxes axes;
  axes.protection = {soc::ProtectionLevel::kPlaintext,
                     soc::ProtectionLevel::kFull};
  axes.seeds = {1, 7, 42};
  std::vector<ScenarioSpec> jobs = expand(base, axes);

  ScenarioSpec attack = base;
  attack.variant = "attack=hijack";
  attack.attack.kind = AttackKind::kHijack;
  jobs.push_back(attack);
  return jobs;
}

void expect_identical(const JobResult& a, const JobResult& b,
                      std::size_t index) {
  EXPECT_EQ(a.index, b.index) << index;
  EXPECT_EQ(a.variant, b.variant) << index;
  // SocResults, field by field, bit-identical (doubles included: the same
  // deterministic computation must produce the same bits).
  EXPECT_EQ(a.soc.cycles, b.soc.cycles) << index;
  EXPECT_EQ(a.soc.completed, b.soc.completed) << index;
  EXPECT_EQ(a.soc.transactions_ok, b.soc.transactions_ok) << index;
  EXPECT_EQ(a.soc.transactions_failed, b.soc.transactions_failed) << index;
  EXPECT_EQ(a.soc.alerts, b.soc.alerts) << index;
  EXPECT_EQ(a.soc.avg_access_latency, b.soc.avg_access_latency) << index;
  EXPECT_EQ(a.soc.bus_occupancy, b.soc.bus_occupancy) << index;
  EXPECT_EQ(a.soc.bytes_moved, b.soc.bytes_moved) << index;
  EXPECT_EQ(a.fw_passed, b.fw_passed) << index;
  EXPECT_EQ(a.fw_blocked, b.fw_blocked) << index;
  EXPECT_EQ(a.fw_check_cycles, b.fw_check_cycles) << index;
  EXPECT_EQ(a.violations, b.violations) << index;
  EXPECT_EQ(a.detected, b.detected) << index;
  EXPECT_EQ(a.detection_cycle, b.detection_cycle) << index;
  EXPECT_EQ(a.contained, b.contained) << index;
}

TEST(Runner, ParallelResultsBitIdenticalToSerial) {
  const std::vector<ScenarioSpec> jobs = make_jobs();

  BatchOptions serial;
  serial.threads = 1;
  const auto expected = run_batch(jobs, serial);
  ASSERT_EQ(expected.size(), jobs.size());

  for (const unsigned threads : {2u, 4u, 8u}) {
    BatchOptions parallel;
    parallel.threads = threads;
    const auto got = run_batch(jobs, parallel);
    ASSERT_EQ(got.size(), expected.size()) << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(expected[i], got[i], i);
    }
  }
}

TEST(Runner, HardwareConcurrencyAlsoIdentical) {
  const std::vector<ScenarioSpec> jobs = make_jobs();
  BatchOptions serial;
  serial.threads = 1;
  BatchOptions automatic;
  automatic.threads = 0;  // hardware_concurrency
  const auto expected = run_batch(jobs, serial);
  const auto got = run_batch(jobs, automatic);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_identical(expected[i], got[i], i);
  }
}

TEST(Runner, ResultsArriveInSubmissionOrder) {
  const std::vector<ScenarioSpec> jobs = make_jobs();
  BatchOptions options;
  options.threads = 4;
  const auto results = run_batch(jobs, options);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].variant, jobs[i].variant);
  }
}

TEST(Runner, ProgressCallbackFiresOncePerJob) {
  const std::vector<ScenarioSpec> jobs = make_jobs();
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> max_done{0};
  BatchOptions options;
  options.threads = 4;
  options.on_job_done = [&](const JobResult&, std::size_t done,
                            std::size_t total) {
    ++calls;
    // Callbacks run concurrently (the runner no longer serializes them), so
    // the max is tracked with a CAS loop, not check-then-act.
    std::size_t seen = max_done.load();
    while (done > seen && !max_done.compare_exchange_weak(seen, done)) {
    }
    EXPECT_EQ(total, jobs.size());
  };
  (void)run_batch(jobs, options);
  EXPECT_EQ(calls.load(), jobs.size());
  EXPECT_EQ(max_done.load(), jobs.size());
}

TEST(Runner, EmptyBatchIsEmpty) {
  EXPECT_TRUE(run_batch({}, {}).empty());
}

TEST(Runner, AggregateAndEmissionAreThreadCountInvariant) {
  const std::vector<ScenarioSpec> jobs = make_jobs();
  BatchOptions serial;
  serial.threads = 1;
  BatchOptions parallel;
  parallel.threads = 4;
  const auto a = run_batch(jobs, serial);
  const auto b = run_batch(jobs, parallel);

  const BatchAggregate agg_a = BatchAggregate::from(a);
  const BatchAggregate agg_b = BatchAggregate::from(b);
  EXPECT_EQ(agg_a.jobs_completed, agg_b.jobs_completed);
  EXPECT_EQ(agg_a.cycles.mean(), agg_b.cycles.mean());
  EXPECT_EQ(agg_a.latency.stddev(), agg_b.latency.stddev());
  EXPECT_EQ(agg_a.latency_p95, agg_b.latency_p95);

  util::CsvWriter csv_a, csv_b;  // in-memory
  write_batch_csv(csv_a, a);
  write_batch_csv(csv_b, b);
  EXPECT_EQ(csv_a.buffer(), csv_b.buffer());

  EXPECT_EQ(batch_json("t", a, agg_a), batch_json("t", b, agg_b));
}

}  // namespace
}  // namespace secbus::scenario
