// Sweep expansion: cardinality arithmetic, axis application, label
// stability, and deterministic seed replication.
#include "scenario/sweep.hpp"

#include <gtest/gtest.h>

#include <set>

#include "soc/presets.hpp"

namespace secbus::scenario {
namespace {

ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.soc = soc::tiny_test_config();
  spec.max_cycles = 1'000'000;
  return spec;
}

TEST(SweepAxes, EmptyAxesHaveCardinalityOne) {
  const SweepAxes axes;
  EXPECT_TRUE(axes.empty());
  EXPECT_EQ(axes.cardinality(), 1u);
}

TEST(SweepAxes, CardinalityIsProductOfNonEmptyAxes) {
  SweepAxes axes;
  axes.cpus = {1, 2, 3};
  EXPECT_EQ(axes.cardinality(), 3u);
  axes.security = {soc::SecurityMode::kNone, soc::SecurityMode::kDistributed};
  EXPECT_EQ(axes.cardinality(), 6u);
  axes.protection = {soc::ProtectionLevel::kPlaintext,
                     soc::ProtectionLevel::kCipherOnly,
                     soc::ProtectionLevel::kFull};
  EXPECT_EQ(axes.cardinality(), 18u);
  axes.seeds = {1, 2, 3, 4};
  EXPECT_EQ(axes.cardinality(), 72u);
  axes.extra_rules = {0, 8};
  axes.line_bytes = {32, 64};
  axes.external_fraction = {0.1, 0.5};
  EXPECT_EQ(axes.cardinality(), 72u * 8u);
}

TEST(Sweep, ExpandMatchesCardinalityAndAppliesAxes) {
  SweepAxes axes;
  axes.cpus = {1, 2};
  axes.protection = {soc::ProtectionLevel::kPlaintext,
                     soc::ProtectionLevel::kFull};
  axes.seeds = {7, 11, 13};
  const auto jobs = expand(tiny_spec(), axes);
  ASSERT_EQ(jobs.size(), axes.cardinality());
  ASSERT_EQ(jobs.size(), 12u);

  std::set<std::string> labels;
  std::set<std::tuple<std::size_t, int, std::uint64_t>> combos;
  for (const ScenarioSpec& job : jobs) {
    EXPECT_EQ(job.name, "tiny");
    labels.insert(job.variant);
    combos.emplace(job.soc.processors, static_cast<int>(job.soc.protection),
                   job.soc.seed);
  }
  EXPECT_EQ(labels.size(), jobs.size()) << "variant labels must be unique";
  EXPECT_EQ(combos.size(), jobs.size()) << "every combination exactly once";
}

TEST(Sweep, EmptyAxesReturnBaseSpecUnchanged) {
  const ScenarioSpec base = tiny_spec();
  const auto jobs = expand(base, SweepAxes{});
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].variant, "");
  EXPECT_EQ(jobs[0].soc.seed, base.soc.seed);
  EXPECT_EQ(jobs[0].soc.processors, base.soc.processors);
}

TEST(Sweep, ExpansionOrderIsDeterministic) {
  SweepAxes axes;
  axes.security = {soc::SecurityMode::kDistributed, soc::SecurityMode::kNone};
  axes.seeds = {3, 1, 2};
  const auto first = expand(tiny_spec(), axes);
  const auto second = expand(tiny_spec(), axes);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].variant, second[i].variant) << i;
    EXPECT_EQ(first[i].soc.seed, second[i].soc.seed) << i;
  }
  // Axis values are honored in the order given, not sorted.
  EXPECT_EQ(first[0].soc.seed, 3u);
  EXPECT_EQ(first[1].soc.seed, 1u);
  EXPECT_EQ(first[2].soc.seed, 2u);
}

TEST(Sweep, ReplicateSeedsDerivesDistinctDeterministicSeeds) {
  const auto jobs = replicate_seeds(expand(tiny_spec(), SweepAxes{}), 4);
  ASSERT_EQ(jobs.size(), 4u);
  std::set<std::uint64_t> seeds;
  for (const ScenarioSpec& job : jobs) seeds.insert(job.soc.seed);
  EXPECT_EQ(seeds.size(), 4u) << "derived seeds must be distinct";
  EXPECT_EQ(jobs[0].soc.seed, tiny_spec().soc.seed) << "repeat 0 keeps base";
  for (std::size_t r = 0; r < jobs.size(); ++r) {
    EXPECT_EQ(jobs[r].soc.seed, derive_seed(tiny_spec().soc.seed, r)) << r;
  }
}

TEST(Sweep, ReplicateReplacesSweptSeedLabel) {
  SweepAxes axes;
  axes.seeds = {1, 2};
  const auto jobs = replicate_seeds(expand(tiny_spec(), axes), 3);
  ASSERT_EQ(jobs.size(), 6u);
  for (const ScenarioSpec& job : jobs) {
    // Exactly one seed= component, and it names the seed actually run.
    const std::string expected = "seed=" + std::to_string(job.soc.seed);
    EXPECT_EQ(job.variant, expected) << job.variant;
  }
}

TEST(Sweep, ReplicateOnceIsIdentity) {
  const auto base = expand(tiny_spec(), SweepAxes{});
  const auto jobs = replicate_seeds(base, 1);
  ASSERT_EQ(jobs.size(), base.size());
  EXPECT_EQ(jobs[0].soc.seed, base[0].soc.seed);
  EXPECT_EQ(jobs[0].variant, base[0].variant);
}

}  // namespace
}  // namespace secbus::scenario
