#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace secbus::sim {
namespace {

// Records the order in which it is ticked.
class Probe final : public Component {
 public:
  Probe(std::string name, std::vector<std::string>& sink)
      : Component(std::move(name)), sink_(&sink) {}

  void tick(Cycle now) override {
    sink_->push_back(name() + "@" + std::to_string(now));
    ++ticks;
  }
  void reset() override { resets++; }

  int ticks = 0;
  int resets = 0;

 private:
  std::vector<std::string>* sink_;
};

TEST(Kernel, TicksComponentsInRegistrationOrder) {
  SimKernel k;
  std::vector<std::string> order;
  Probe a("a", order), b("b", order), c("c", order);
  k.add(a);
  k.add(b);
  k.add(c);
  k.run(2);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], "a@0");
  EXPECT_EQ(order[1], "b@0");
  EXPECT_EQ(order[2], "c@0");
  EXPECT_EQ(order[3], "a@1");
}

TEST(Kernel, NowAdvances) {
  SimKernel k;
  EXPECT_EQ(k.now(), 0u);
  k.run(5);
  EXPECT_EQ(k.now(), 5u);
  k.step();
  EXPECT_EQ(k.now(), 6u);
}

TEST(Kernel, ScheduleRunsAtRequestedCycleBeforeTicks) {
  SimKernel k;
  std::vector<std::string> order;
  Probe a("a", order);
  k.add(a);
  k.schedule(2, [&order] { order.push_back("cb@sched"); });
  k.run(4);
  // Callback fires at cycle 2, before a's tick of cycle 2.
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "a@0");
  EXPECT_EQ(order[1], "a@1");
  EXPECT_EQ(order[2], "cb@sched");
  EXPECT_EQ(order[3], "a@2");
}

TEST(Kernel, ScheduledCallbacksSameCycleRunFifo) {
  SimKernel k;
  std::vector<int> order;
  k.schedule(1, [&order] { order.push_back(1); });
  k.schedule(1, [&order] { order.push_back(2); });
  k.schedule(0, [&order] { order.push_back(0); });
  k.run(3);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Kernel, CallbackMayScheduleSameCycleWork) {
  SimKernel k;
  std::vector<int> order;
  k.schedule(1, [&] {
    order.push_back(1);
    k.schedule(0, [&order] { order.push_back(2); });
  });
  k.run(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, RunUntilStopsOnPredicate) {
  SimKernel k;
  std::vector<std::string> order;
  Probe a("a", order);
  k.add(a);
  const bool hit = k.run_until([&a] { return a.ticks >= 3; }, 100);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.ticks, 3);
  EXPECT_EQ(k.now(), 3u);
}

TEST(Kernel, RunUntilTimesOut) {
  SimKernel k;
  const bool hit = k.run_until([] { return false; }, 10);
  EXPECT_FALSE(hit);
  EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, ResetRestoresTimeAndComponents) {
  SimKernel k;
  std::vector<std::string> order;
  Probe a("a", order);
  k.add(a);
  k.schedule(50, [] {});
  k.run(3);
  k.reset();
  EXPECT_EQ(k.now(), 0u);
  EXPECT_EQ(a.resets, 1);
  // The pending callback at cycle 50 was dropped: running 60 cycles after
  // reset re-executes ticks but no stale callback.
  order.clear();
  k.run(1);
  EXPECT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "a@0");
}

TEST(Kernel, TicksExecutedCountsAllComponents) {
  SimKernel k;
  std::vector<std::string> order;
  Probe a("a", order), b("b", order);
  k.add(a);
  k.add(b);
  k.run(10);
  EXPECT_EQ(k.ticks_executed(), 20u);
  EXPECT_EQ(k.component_count(), 2u);
}

}  // namespace
}  // namespace secbus::sim
