#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sim/types.hpp"

namespace secbus::sim {
namespace {

TraceEvent ev(Cycle cycle, TraceKind kind, TransactionId trans = 0) {
  return TraceEvent{cycle, kind, "test", trans, 0x1000, 0};
}

TEST(EventTrace, DisabledByDefaultStillCounts) {
  EventTrace trace;  // capacity 0
  EXPECT_FALSE(trace.enabled());
  trace.record(ev(1, TraceKind::kAlert));
  EXPECT_EQ(trace.total_recorded(), 1u);
  EXPECT_EQ(trace.count_of(TraceKind::kAlert), 1u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(EventTrace, RecordsUpToCapacity) {
  EventTrace trace(4);
  for (Cycle c = 0; c < 3; ++c) trace.record(ev(c, TraceKind::kSecpolReq, c));
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cycle, 0u);
  EXPECT_EQ(events[2].cycle, 2u);
}

TEST(EventTrace, RingDropsOldest) {
  EventTrace trace(3);
  for (Cycle c = 0; c < 5; ++c) trace.record(ev(c, TraceKind::kSecpolReq, c));
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].cycle, 2u);  // 0 and 1 evicted
  EXPECT_EQ(events[2].cycle, 4u);
  EXPECT_EQ(trace.total_recorded(), 5u);
}

TEST(EventTrace, PerKindCounters) {
  EventTrace trace(8);
  trace.record(ev(0, TraceKind::kAlert));
  trace.record(ev(1, TraceKind::kAlert));
  trace.record(ev(2, TraceKind::kCipherOp));
  EXPECT_EQ(trace.count_of(TraceKind::kAlert), 2u);
  EXPECT_EQ(trace.count_of(TraceKind::kCipherOp), 1u);
  EXPECT_EQ(trace.count_of(TraceKind::kIntegrityOp), 0u);
}

TEST(EventTrace, ClearResetsEverything) {
  EventTrace trace(4);
  trace.record(ev(0, TraceKind::kAlert));
  trace.clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.count_of(TraceKind::kAlert), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(EventTrace, FormatContainsKindAndAddress) {
  EventTrace trace(4);
  trace.record(ev(7, TraceKind::kTransDiscarded, 42));
  const std::string text = trace.format();
  EXPECT_NE(text.find("trans_discarded"), std::string::npos);
  EXPECT_NE(text.find("0x00001000"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(EventTrace, FormatLimitsLines) {
  EventTrace trace(100);
  for (Cycle c = 0; c < 50; ++c) trace.record(ev(c, TraceKind::kSecpolReq));
  const std::string text = trace.format(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 10);
}

TEST(TraceKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(TraceKind::kSecpolReq), "secpol_req");
  EXPECT_STREQ(to_string(TraceKind::kAlert), "alert");
  EXPECT_STREQ(to_string(TraceKind::kPolicyUpdate), "policy_update");
  EXPECT_STREQ(to_string(TraceKind::kAttackAction), "attack_action");
}

TEST(ClockDomain, Conversions) {
  ClockDomain clk{100e6};
  EXPECT_DOUBLE_EQ(clk.period_ns(), 10.0);
  EXPECT_DOUBLE_EQ(clk.cycles_to_ns(100), 1000.0);
  EXPECT_DOUBLE_EQ(clk.cycles_to_us(100), 1.0);
  // 4.5 bits/cycle at 100 MHz = 450 Mb/s (the paper's CC throughput).
  EXPECT_NEAR(clk.mbps(4.5, 1.0), 450.0, 1e-9);
  EXPECT_NEAR(clk.bits_per_cycle_for_mbps(450.0), 4.5, 1e-9);
  // 1.31 bits/cycle = 131 Mb/s (the paper's IC throughput).
  EXPECT_NEAR(clk.mbps(1.31, 1.0), 131.0, 1e-9);
}

}  // namespace
}  // namespace secbus::sim
