// Determinism: identical configurations and seeds must produce bit-identical
// simulation outcomes — the foundation every bench comparison rests on.
#include <gtest/gtest.h>

#include "soc/presets.hpp"
#include "soc/soc.hpp"

namespace secbus::soc {
namespace {

struct RunDigest {
  sim::Cycle cycles;
  std::uint64_t ok;
  std::uint64_t bytes;
  double latency;
  std::uint64_t bus_busy;
  std::uint64_t ddr_row_hits;
  std::uint64_t lcf_lines_encrypted;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_once(const SocConfig& cfg) {
  Soc soc(cfg);
  const SocResults r = soc.run(3'000'000);
  EXPECT_TRUE(r.completed);
  RunDigest d{};
  d.cycles = r.cycles;
  d.ok = r.transactions_ok;
  d.bytes = r.bytes_moved;
  d.latency = r.avg_access_latency;
  d.bus_busy = soc.bus().stats().busy_cycles;
  d.ddr_row_hits = soc.ddr().stats().row_hits;
  d.lcf_lines_encrypted =
      soc.lcf() != nullptr ? soc.lcf()->stats().lines_encrypted : 0;
  return d;
}

TEST(Determinism, SameSeedBitIdentical) {
  const SocConfig cfg = tiny_test_config();
  const RunDigest first = run_once(cfg);
  const RunDigest second = run_once(cfg);
  EXPECT_EQ(first, second);
}

TEST(Determinism, Section5SameSeedBitIdentical) {
  SocConfig cfg = section5_config();
  cfg.transactions_per_cpu = 40;
  EXPECT_EQ(run_once(cfg), run_once(cfg));
}

TEST(Determinism, DifferentSeedsDiverge) {
  SocConfig a = tiny_test_config();
  SocConfig b = tiny_test_config();
  b.seed = a.seed + 1;
  const RunDigest da = run_once(a);
  const RunDigest db = run_once(b);
  EXPECT_NE(da, db);
}

TEST(Determinism, KernelResetReproducesRun) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  const SocResults first = soc.run(2'000'000);
  ASSERT_TRUE(first.completed);
  const auto busy_first = soc.bus().stats().busy_cycles;

  soc.kernel().reset();
  // Memories are SlaveDevices, not clocked components, so their timing
  // state is restored explicitly (contents may persist: the workload is
  // write-before-read within a run).
  soc.ddr().reset_timing_state();
  const SocResults second = soc.run(2'000'000);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.cycles, first.cycles);
  EXPECT_EQ(second.transactions_ok, first.transactions_ok);
  EXPECT_EQ(soc.bus().stats().busy_cycles, busy_first);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EverySeedCompletesCleanly) {
  SocConfig cfg = tiny_test_config();
  cfg.seed = GetParam();
  Soc soc(cfg);
  const SocResults r = soc.run(3'000'000);
  EXPECT_TRUE(r.completed) << "seed " << GetParam();
  EXPECT_EQ(r.alerts, 0u) << "benign workload must not alert";
  EXPECT_EQ(r.transactions_failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace secbus::soc
