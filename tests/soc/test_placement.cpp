// Placement overrides: memories and the dedicated IP can live on any fabric
// segment (SocConfig::memory_segment / dma_segment), closing the PR-3
// remnant that hard-anchored them on segment 0 — and the secure BRAM and
// open DDR can live on *different* segments (bram_segment / ddr_segment),
// closing the PR-4 remnant that kept them on one shared home. Cross-segment
// memory traffic must route over bridges and stay firewalled exactly like
// segment-0 placement.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"

namespace secbus::soc {
namespace {

SocConfig mesh_cfg(std::size_t memory_segment) {
  SocConfig cfg = tiny_test_config();
  cfg.topology = TopologySpec::mesh(2, 2);
  cfg.processors = 4;
  cfg.memory_segment = memory_segment;
  cfg.transactions_per_cpu = 30;
  return cfg;
}

TEST(Placement, DefaultsReproduceTheSegmentZeroAnchor) {
  Soc soc(mesh_cfg(0));
  EXPECT_EQ(soc.memory_segment(), 0u);
  EXPECT_EQ(soc.dma_segment(), 0u);  // auto follows the memories
}

TEST(Placement, MemoriesOnAFarMeshCornerStillServeEveryCpu) {
  SocConfig cfg = mesh_cfg(3);
  Soc soc(cfg);
  EXPECT_EQ(soc.memory_segment(), 3u);

  const SocResults results = soc.run(5'000'000);
  EXPECT_TRUE(results.completed);
  EXPECT_EQ(results.transactions_failed, 0u);
  EXPECT_EQ(results.alerts, 0u);
  EXPECT_GT(results.transactions_ok, 0u);

  // CPU 0 lives on segment 0; its memory traffic must have crossed bridges
  // to reach the corner-3 memories (2 hops on a 2x2 mesh).
  EXPECT_EQ(soc.fabric().hop_count(0, 3), 2u);
  std::uint64_t bridged = 0;
  for (const auto& bridge : soc.fabric().bridges()) {
    bridged += bridge->stats().forwarded;
  }
  EXPECT_GT(bridged, 0u);
}

TEST(Placement, RemoteMemoryRunMatchesMirroredCornerStatistics) {
  // A 2x2 mesh is symmetric under the 0<->3 corner swap, but the CPU
  // round-robin is not (cpu i keeps segment i either way), so only
  // structural invariants must match: same transaction count, everything
  // completed, zero alerts.
  Soc at0(mesh_cfg(0));
  const SocResults r0 = at0.run(5'000'000);
  Soc at3(mesh_cfg(3));
  const SocResults r3 = at3.run(5'000'000);
  EXPECT_TRUE(r0.completed);
  EXPECT_TRUE(r3.completed);
  EXPECT_EQ(r0.transactions_ok, r3.transactions_ok);
  EXPECT_EQ(r0.transactions_failed, r3.transactions_failed);
  EXPECT_EQ(r0.alerts, r3.alerts);
}

TEST(Placement, CrossSegmentProbesAreStillFirewalled) {
  // A hijacked master placed as far as possible from the corner-3 memories
  // (segment 0 now) must be contained by its own Local Firewall: no probe
  // may cross a bridge, exactly like the segment-0 fabric_containment
  // scenario.
  scenario::ScenarioSpec spec;
  spec.name = "placement-hijack";
  spec.soc = mesh_cfg(3);
  spec.attack.kind = scenario::AttackKind::kHijack;
  spec.max_cycles = 2'000'000;

  const scenario::JobResult result = scenario::run_scenario(spec);
  EXPECT_TRUE(result.soc.completed);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.containment_checked);
  EXPECT_TRUE(result.contained);
  EXPECT_GT(result.fw_blocked, 0u);
  // max_hops is measured from the *overridden* memory segment.
  EXPECT_EQ(result.max_hops, 2u);
}

TEST(Placement, ExternalAttackOnRemoteMemoryIsDetectedUnderFullProtection) {
  scenario::ScenarioSpec spec;
  spec.name = "placement-spoof";
  spec.soc = mesh_cfg(3);
  spec.soc.protection = ProtectionLevel::kFull;
  spec.attack.kind = scenario::AttackKind::kExternalSpoof;
  spec.max_cycles = 4'000'000;

  const scenario::JobResult result = scenario::run_scenario(spec);
  EXPECT_TRUE(result.soc.completed);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.victim_checked);
  EXPECT_FALSE(result.victim_data_intact);  // read aborted, not corrupted
  EXPECT_TRUE(result.victim_read_aborted);
}

TEST(Placement, StarLeafMemoriesWork) {
  SocConfig cfg = tiny_test_config();
  cfg.topology = TopologySpec::star(3);
  cfg.processors = 3;
  cfg.memory_segment = 2;  // a leaf, not the hub
  cfg.transactions_per_cpu = 30;
  Soc soc(cfg);
  const SocResults results = soc.run(5'000'000);
  EXPECT_TRUE(results.completed);
  EXPECT_EQ(results.alerts, 0u);
}

TEST(Placement, DedicatedIpSegmentIsIndependent) {
  SocConfig cfg = mesh_cfg(3);
  cfg.dedicated_ip = true;
  cfg.dma_segment = 1;  // neither the memory corner nor auto
  Soc soc(cfg);
  EXPECT_EQ(soc.dma_segment(), 1u);
  const SocResults results = soc.run(5'000'000);
  EXPECT_TRUE(results.completed);
  EXPECT_EQ(results.alerts, 0u);
}

TEST(Placement, SplitMemoriesDefaultToTheSharedHomeSegment) {
  Soc soc(mesh_cfg(3));
  EXPECT_EQ(soc.bram_segment(), 3u);  // auto follows memory_segment
  EXPECT_EQ(soc.ddr_segment(), 3u);
}

TEST(Placement, SecureAndOpenMemoriesOnDifferentSegmentsServeEveryCpu) {
  // The secure internal BRAM and the open external DDR split across
  // opposite mesh corners: every CPU reaches both, nothing raises alerts,
  // and traffic demonstrably crosses bridges toward *both* memories.
  SocConfig cfg = mesh_cfg(0);
  cfg.bram_segment = 0;
  cfg.ddr_segment = 3;
  Soc soc(cfg);
  EXPECT_EQ(soc.bram_segment(), 0u);
  EXPECT_EQ(soc.ddr_segment(), 3u);

  const SocResults results = soc.run(5'000'000);
  EXPECT_TRUE(results.completed);
  EXPECT_EQ(results.transactions_failed, 0u);
  EXPECT_EQ(results.alerts, 0u);
  EXPECT_GT(results.transactions_ok, 0u);
  std::uint64_t bridged = 0;
  for (const auto& bridge : soc.fabric().bridges()) {
    bridged += bridge->stats().forwarded;
  }
  EXPECT_GT(bridged, 0u);
}

TEST(Placement, SplitMemoryRoutingMatchesSharedPlacementStatistics) {
  // Splitting the memories changes only *where* accesses travel, not which
  // accesses succeed: transaction outcomes match the shared-home run.
  SocConfig shared = mesh_cfg(0);
  Soc a(shared);
  const SocResults ra = a.run(5'000'000);

  SocConfig split = mesh_cfg(0);
  split.ddr_segment = 3;
  Soc b(split);
  const SocResults rb = b.run(5'000'000);

  EXPECT_TRUE(ra.completed);
  EXPECT_TRUE(rb.completed);
  EXPECT_EQ(ra.transactions_ok, rb.transactions_ok);
  EXPECT_EQ(ra.transactions_failed, rb.transactions_failed);
  EXPECT_EQ(ra.alerts, rb.alerts);
  // Timing genuinely changes: external accesses pay bridge hops but no
  // longer contend with BRAM traffic on one segment (empirically the split
  // *wins* here — the whole point of making placement explorable).
  EXPECT_NE(rb.avg_access_latency, ra.avg_access_latency);
}

TEST(Placement, HijackAgainstSplitMemoriesIsStillFirewalled) {
  // Attack masters spawn farthest from the *DDR* (the protected target).
  // With the DDR on corner 3 the hijacker lands on corner 0 and its LF
  // must contain every cross-fabric probe.
  scenario::ScenarioSpec spec;
  spec.name = "placement-split-hijack";
  spec.soc = mesh_cfg(0);
  spec.soc.ddr_segment = 3;
  spec.attack.kind = scenario::AttackKind::kHijack;
  spec.max_cycles = 2'000'000;

  const scenario::JobResult result = scenario::run_scenario(spec);
  EXPECT_TRUE(result.soc.completed);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.containment_checked);
  EXPECT_TRUE(result.contained);
  EXPECT_GT(result.fw_blocked, 0u);
  // max_hops is measured from the *DDR's* segment (corner 3 -> corner 0).
  EXPECT_EQ(result.max_hops, 2u);
}

TEST(Placement, ExternalSpoofOnRelocatedDdrIsDetected) {
  scenario::ScenarioSpec spec;
  spec.name = "placement-split-spoof";
  spec.soc = mesh_cfg(0);
  spec.soc.ddr_segment = 2;
  spec.soc.protection = ProtectionLevel::kFull;
  spec.attack.kind = scenario::AttackKind::kExternalSpoof;
  spec.max_cycles = 4'000'000;

  const scenario::JobResult result = scenario::run_scenario(spec);
  EXPECT_TRUE(result.soc.completed);
  EXPECT_TRUE(result.attack_ran);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.victim_checked);
  EXPECT_FALSE(result.victim_data_intact);
  EXPECT_TRUE(result.victim_read_aborted);
}

TEST(Placement, SplitFieldsAtAutoAreBitIdenticalToTheSharedHome) {
  SocConfig cfg = mesh_cfg(3);
  Soc a(cfg);
  const SocResults ra = a.run(5'000'000);
  SocConfig cfg2 = mesh_cfg(3);
  cfg2.bram_segment = 3;  // explicit == auto resolution
  cfg2.ddr_segment = 3;
  Soc b(cfg2);
  const SocResults rb = b.run(5'000'000);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.transactions_ok, rb.transactions_ok);
  EXPECT_EQ(ra.bytes_moved, rb.bytes_moved);
  EXPECT_DOUBLE_EQ(ra.avg_access_latency, rb.avg_access_latency);
}

TEST(Placement, FlatTopologyIsUnchangedByTheNewFields) {
  // Placement defaults on the flat bus must reproduce the legacy system
  // bit-for-bit (the new fields only *add* freedom).
  SocConfig cfg = tiny_test_config();
  Soc a(cfg);
  const SocResults ra = a.run(5'000'000);
  SocConfig cfg2 = tiny_test_config();
  cfg2.memory_segment = 0;
  cfg2.dma_segment = SocConfig::kAutoSegment;
  Soc b(cfg2);
  const SocResults rb = b.run(5'000'000);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.transactions_ok, rb.transactions_ok);
  EXPECT_EQ(ra.bytes_moved, rb.bytes_moved);
  EXPECT_DOUBLE_EQ(ra.avg_access_latency, rb.avg_access_latency);
}

}  // namespace
}  // namespace secbus::soc
