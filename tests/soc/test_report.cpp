#include "soc/report.hpp"

#include <gtest/gtest.h>

#include "soc/presets.hpp"

namespace secbus::soc {
namespace {

TEST(SocReport, FirewallReportListsAllFirewalls) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  (void)soc.run(2'000'000);
  const std::string report = render_firewall_report(soc);
  EXPECT_NE(report.find("lf_cpu0"), std::string::npos);
  EXPECT_NE(report.find("lf_bram"), std::string::npos);
  EXPECT_NE(report.find("lcf_ddr"), std::string::npos);
  EXPECT_NE(report.find("secpol_req"), std::string::npos);
}

TEST(SocReport, LcfReportShowsCryptoWork) {
  SocConfig cfg = tiny_test_config();
  cfg.external_fraction = 0.8;
  Soc soc(cfg);
  (void)soc.run(4'000'000);
  const std::string report = render_lcf_report(soc);
  EXPECT_NE(report.find("cipher"), std::string::npos);
  EXPECT_NE(report.find("hash-tree"), std::string::npos);
  EXPECT_NE(report.find("CC:"), std::string::npos);
  EXPECT_NE(report.find("IC:"), std::string::npos);
}

TEST(SocReport, LcfReportEmptyWithoutLcf) {
  SocConfig cfg = tiny_test_config();
  cfg.security = SecurityMode::kNone;
  Soc soc(cfg);
  (void)soc.run(1'000'000);
  EXPECT_TRUE(render_lcf_report(soc).empty());
}

TEST(SocReport, PerformanceReportMentionsBusAndDdr) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  (void)soc.run(2'000'000);
  const std::string report = render_performance_report(soc);
  EXPECT_NE(report.find("cpu0"), std::string::npos);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
  EXPECT_NE(report.find("DDR"), std::string::npos);
}

TEST(SocReport, AlertReportEmptyOnBenignRun) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  (void)soc.run(2'000'000);
  const std::string report = render_alert_report(soc);
  EXPECT_NE(report.find("Alerts: 0"), std::string::npos);
}

TEST(SocReport, AlertReportTruncatesLongLogs) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  auto& mal = soc.add_scripted_master("noisy", soc.cpu_policy(0));
  for (int i = 0; i < 8; ++i) {
    mal.enqueue_read(5, 0xD000'0000);  // out-of-segment -> alert
  }
  (void)soc.run(2'000'000);
  const std::string report = render_alert_report(soc, 3);
  EXPECT_NE(report.find("Alerts: 8"), std::string::npos);
  EXPECT_NE(report.find("(5 more)"), std::string::npos);
}

TEST(SocReport, FullReportConcatenatesSections) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  (void)soc.run(2'000'000);
  const std::string report = render_full_report(soc);
  EXPECT_NE(report.find("Per-firewall activity"), std::string::npos);
  EXPECT_NE(report.find("Bus masters"), std::string::npos);
  EXPECT_NE(report.find("Alerts:"), std::string::npos);
}

}  // namespace
}  // namespace secbus::soc
