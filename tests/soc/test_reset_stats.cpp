// Soc::reset_stats() must zero every component's accounting — including the
// Processor / DMA / DDR / ScriptedMaster / centralized-gate structs that
// historically lacked a reset — without disturbing simulation state (kernel
// time, memory contents, security policy, the event trace).
#include "soc/soc.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/registry.hpp"
#include "soc/presets.hpp"

namespace secbus::soc {
namespace {

obs::Registry snap(const Soc& soc) {
  obs::Registry reg;
  soc.snapshot_metrics(reg);
  return reg;
}

TEST(ResetStats, ZeroesDistributedComponentCounters) {
  SocConfig cfg = tiny_test_config();
  cfg.transactions_per_cpu = 50;
  Soc soc(cfg);
  const SocResults r = soc.run(2'000'000);
  ASSERT_TRUE(r.completed);

  const obs::Registry before = snap(soc);
  // The run left real accounting behind in every layer.
  EXPECT_GT(before.counter_value("bus.seg0.transactions"), 0u);
  EXPECT_GT(before.counter_value("ip.cpu0.issued"), 0u);
  EXPECT_GT(before.counter_value("ip.cpu0.latency.count"), 0u);
  EXPECT_GT(before.counter_value("core.lf_cpu0.secpol_reqs"), 0u);
  EXPECT_GT(before.counter_value("mem.ddr.reads") +
                before.counter_value("mem.ddr.writes"),
            0u);

  soc.reset_stats();
  const obs::Registry after = snap(soc);

  EXPECT_EQ(after.counter_value("bus.seg0.transactions"), 0u);
  EXPECT_EQ(after.counter_value("bus.seg0.busy_cycles"), 0u);
  EXPECT_EQ(after.counter_value("ip.cpu0.issued"), 0u);
  EXPECT_EQ(after.counter_value("ip.cpu0.bytes_moved"), 0u);
  EXPECT_EQ(after.counter_value("ip.cpu0.latency.count"), 0u);
  EXPECT_EQ(after.counter_value("core.lf_cpu0.secpol_reqs"), 0u);
  EXPECT_EQ(after.counter_value("core.lf_cpu0.passed"), 0u);
  EXPECT_EQ(after.counter_value("mem.ddr.reads"), 0u);
  EXPECT_EQ(after.counter_value("mem.ddr.writes"), 0u);

  // Simulation state is untouched: kernel time keeps advancing from where
  // the run ended, and the trace accounting is not part of the reset.
  EXPECT_EQ(after.counter_value("soc.cycles"),
            before.counter_value("soc.cycles"));
  EXPECT_EQ(after.counter_value("trace.total"),
            before.counter_value("trace.total"));
}

TEST(ResetStats, ZeroesCentralizedGateAndManagerCounters) {
  SocConfig cfg = tiny_test_config();
  cfg.security = SecurityMode::kCentralized;
  cfg.transactions_per_cpu = 50;
  Soc soc(cfg);
  const SocResults r = soc.run(2'000'000);
  ASSERT_TRUE(r.completed);

  const obs::Registry before = snap(soc);
  EXPECT_GT(before.counter_value("core.manager.checks_served"), 0u);
  EXPECT_GT(before.counter_value("core.gate_cpu0.secpol_reqs"), 0u);

  soc.reset_stats();
  const obs::Registry after = snap(soc);
  EXPECT_EQ(after.counter_value("core.manager.checks_served"), 0u);
  EXPECT_EQ(after.counter_value("core.manager.queue_wait.count"), 0u);
  EXPECT_EQ(after.counter_value("core.gate_cpu0.secpol_reqs"), 0u);
  EXPECT_EQ(after.counter_value("core.gate_cpu0.passed"), 0u);
}

TEST(ResetStats, ZeroesDmaCounters) {
  SocConfig cfg = tiny_test_config();
  cfg.dedicated_ip = true;
  Soc soc(cfg);
  const auto& plan = soc.plan();
  const std::vector<std::uint8_t> payload(64, 0xC3);
  soc.bram().store().write(plan.bram_scratch.base + 0x100,
                           {payload.data(), payload.size()});
  soc.start_dma(ip::DmaEngine::Job{plan.bram_scratch.base + 0x100,
                                   plan.bram_scratch.base + 0x2000, 64, 8});
  const SocResults r = soc.run(2'000'000);
  ASSERT_TRUE(r.completed);

  EXPECT_EQ(snap(soc).counter_value("ip.dma.bytes_copied"), 64u);
  soc.reset_stats();
  const obs::Registry after = snap(soc);
  EXPECT_EQ(after.counter_value("ip.dma.bytes_copied"), 0u);
  EXPECT_EQ(after.counter_value("ip.dma.bursts"), 0u);
}

}  // namespace
}  // namespace secbus::soc
