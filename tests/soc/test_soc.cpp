#include "soc/soc.hpp"

#include <gtest/gtest.h>

#include "soc/presets.hpp"

namespace secbus::soc {
namespace {

TEST(AddressPlan, WindowsAreDisjointAndInsideMemories) {
  const SocConfig cfg = section5_config();
  const AddressPlan plan = AddressPlan::from_config(cfg);

  EXPECT_EQ(plan.bram_scratch.base, cfg.bram_base);
  EXPECT_EQ(plan.bram_scratch.size + plan.bram_boot.size, cfg.bram_size);
  ASSERT_EQ(plan.cpu_windows.size(), 3u);
  for (std::size_t i = 0; i < plan.cpu_windows.size(); ++i) {
    const auto& w = plan.cpu_windows[i];
    EXPECT_GE(w.base, cfg.ddr_protected_base);
    EXPECT_LE(w.base + w.size,
              cfg.ddr_protected_base + cfg.ddr_protected_size);
    if (i > 0) {
      EXPECT_EQ(w.base, plan.cpu_windows[i - 1].base + plan.cpu_windows[i - 1].size);
    }
  }
  EXPECT_EQ(plan.ddr_scratch.base, cfg.ddr_base + cfg.ddr_protected_size);
  EXPECT_EQ(plan.ddr_scratch.base + plan.ddr_scratch.size,
            cfg.ddr_base + cfg.ddr_size);
}

TEST(Soc, BenignWorkloadCompletesWithoutAlerts) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  const SocResults r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.transactions_failed, 0u);
  EXPECT_EQ(r.transactions_ok, cfg.transactions_per_cpu);
  EXPECT_EQ(r.alerts, 0u);
  EXPECT_GT(r.bytes_moved, 0u);
  EXPECT_GT(r.bus_occupancy, 0.0);
}

TEST(Soc, Section5SystemRuns) {
  SocConfig cfg = section5_config();
  cfg.transactions_per_cpu = 60;  // keep the test fast
  Soc soc(cfg);
  const SocResults r = soc.run(3'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.alerts, 0u);
  EXPECT_EQ(r.transactions_ok, 3 * 60u);
  // All three CPU firewalls saw traffic (the DMA is idle without a job, so
  // its firewall legitimately stays quiet).
  for (std::size_t i = 0; i < cfg.processors; ++i) {
    const auto& fw = soc.master_firewalls()[i];
    EXPECT_GT(fw->stats().secpol_reqs, 0u) << fw->name();
  }
  for (const auto& fw : soc.master_firewalls()) {
    EXPECT_EQ(fw->stats().blocked, 0u) << fw->name();
  }
  // The LCF carried protected traffic.
  ASSERT_NE(soc.lcf(), nullptr);
  EXPECT_GT(soc.lcf()->stats().protected_reads +
                soc.lcf()->stats().protected_writes,
            0u);
}

TEST(Soc, UnsecuredModeHasNoFirewalls) {
  SocConfig cfg = tiny_test_config();
  cfg.security = SecurityMode::kNone;
  Soc soc(cfg);
  EXPECT_EQ(soc.lcf(), nullptr);
  EXPECT_EQ(soc.bram_firewall(), nullptr);
  EXPECT_TRUE(soc.master_firewalls().empty());
  const SocResults r = soc.run(1'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.alerts, 0u);
}

TEST(Soc, CentralizedModeUsesManager) {
  SocConfig cfg = tiny_test_config();
  cfg.security = SecurityMode::kCentralized;
  Soc soc(cfg);
  ASSERT_NE(soc.manager(), nullptr);
  const SocResults r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(soc.manager()->checks_served(), 0u);
}

TEST(Soc, SecurityAddsLatency) {
  SocConfig cfg = tiny_test_config();
  cfg.security = SecurityMode::kNone;
  Soc unsecured(cfg);
  const SocResults r_none = unsecured.run(2'000'000);

  cfg.security = SecurityMode::kDistributed;
  Soc secured(cfg);
  const SocResults r_dist = secured.run(2'000'000);

  ASSERT_TRUE(r_none.completed);
  ASSERT_TRUE(r_dist.completed);
  // Firewalls add per-access latency, so the protected run is slower.
  EXPECT_GT(r_dist.avg_access_latency, r_none.avg_access_latency);
  EXPECT_GT(r_dist.cycles, r_none.cycles);
}

TEST(Soc, ProtectionLevelOrdersExternalCost) {
  auto run_with = [](ProtectionLevel level) {
    SocConfig cfg = tiny_test_config();
    cfg.protection = level;
    cfg.external_fraction = 0.8;  // stress the external path
    Soc soc(cfg);
    return soc.run(4'000'000);
  };
  const SocResults plain = run_with(ProtectionLevel::kPlaintext);
  const SocResults cipher = run_with(ProtectionLevel::kCipherOnly);
  const SocResults full = run_with(ProtectionLevel::kFull);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(cipher.completed);
  ASSERT_TRUE(full.completed);
  EXPECT_LT(plain.avg_access_latency, cipher.avg_access_latency);
  EXPECT_LT(cipher.avg_access_latency, full.avg_access_latency);
}

TEST(Soc, DmaJobRunsThroughFirewalls) {
  SocConfig cfg = tiny_test_config();
  cfg.dedicated_ip = true;
  Soc soc(cfg);
  const auto& plan = soc.plan();
  // Stage data in BRAM scratch, DMA-copy it into the shared-code window...
  // the DMA policy allows bram_scratch and shared_code, so use those.
  const std::vector<std::uint8_t> payload(64, 0xC3);
  soc.bram().store().write(plan.bram_scratch.base + 0x100,
                           {payload.data(), payload.size()});
  soc.start_dma(ip::DmaEngine::Job{plan.bram_scratch.base + 0x100,
                                   plan.bram_scratch.base + 0x2000, 64, 8});
  const SocResults r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  ASSERT_NE(soc.dma(), nullptr);
  EXPECT_EQ(soc.dma()->stats().errors, 0u);
  EXPECT_EQ(soc.dma()->stats().bytes_copied, 64u);
  std::vector<std::uint8_t> copied(64);
  soc.bram().store().read(plan.bram_scratch.base + 0x2000,
                          {copied.data(), copied.size()});
  EXPECT_EQ(copied, payload);
}

TEST(Soc, DmaIntoProtectedRegionThroughLcf) {
  // The DMA loads the shared-code window (inside the LCF's protected
  // range): bursts must flow through rule check + CC + IC and read back
  // intact, with ciphertext (not plaintext) in the DDR cells.
  SocConfig cfg = tiny_test_config();
  cfg.dedicated_ip = true;
  Soc soc(cfg);
  const auto& plan = soc.plan();

  std::vector<std::uint8_t> image(128);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i * 5 + 1);
  }
  soc.bram().store().write(plan.bram_scratch.base + 0x400,
                           {image.data(), image.size()});
  soc.start_dma(ip::DmaEngine::Job{plan.bram_scratch.base + 0x400,
                                   plan.shared_code.base, 128, 8});
  const SocResults r = soc.run(5'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(soc.dma()->stats().errors, 0u);
  EXPECT_EQ(r.alerts, 0u);

  // DDR cells hold ciphertext...
  std::vector<std::uint8_t> raw(128);
  soc.ddr().store().peek(plan.shared_code.base, {raw.data(), raw.size()});
  EXPECT_NE(raw, image);

  // ... and a read through the LCF returns the plaintext image.
  auto readback = bus::make_read(0, plan.shared_code.base,
                                 bus::DataFormat::kWord, 32);
  ASSERT_NE(soc.lcf(), nullptr);
  const auto result = soc.lcf()->access(readback, soc.kernel().now());
  EXPECT_EQ(result.status, bus::TransStatus::kOk);
  EXPECT_EQ(readback.data, image);
  EXPECT_GT(soc.lcf()->stats().lines_encrypted, 0u);
}

TEST(Soc, ScriptedMasterIntegrates) {
  SocConfig cfg = tiny_test_config();
  Soc soc(cfg);
  const auto& plan = soc.plan();
  core::PolicyBuilder pb(0x700);
  pb.allow(plan.bram_scratch.base, plan.bram_scratch.size,
           core::RwAccess::kReadWrite, core::FormatMask::kAll, "scratch");
  auto& master = soc.add_scripted_master("probe", pb.build());
  master.enqueue_write(0, plan.bram_scratch.base + 64, {1, 2, 3, 4});
  master.enqueue_read(10, plan.bram_scratch.base + 64);
  const SocResults r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(master.stats().ok, 2u);
  EXPECT_EQ(master.stats().responses.back().data,
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Soc, PolicyAccessorsDescribePlan) {
  SocConfig cfg = section5_config();
  Soc soc(cfg);
  const auto p0 = soc.cpu_policy(0);
  EXPECT_EQ(p0.rule_count(), 5u);
  EXPECT_EQ(p0.cm, core::ConfidentialityMode::kBypass);  // LFs don't cipher
  const auto lcf_p = soc.lcf_policy();
  EXPECT_EQ(lcf_p.cm, core::ConfidentialityMode::kCipher);
  EXPECT_EQ(lcf_p.im, core::IntegrityMode::kHashTree);
  const auto dma_p = soc.dma_policy();
  EXPECT_EQ(dma_p.rule_count(), 3u);
}

TEST(Soc, ExtraRulesGrowPolicies) {
  SocConfig cfg = tiny_test_config();
  cfg.extra_rules = 6;
  Soc soc(cfg);
  EXPECT_EQ(soc.cpu_policy(0).rule_count(), 5u + 6u);
  // Extra rules raise the SB check latency (12 + ceil((11-4)/2) = 16).
  const SocResults r = soc.run(2'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.alerts, 0u);  // dummy rules never match: no false positives
}

TEST(Soc, TraceCapturesFirewallActivity) {
  SocConfig cfg = tiny_test_config();
  cfg.trace_capacity = 4096;
  cfg.transactions_per_cpu = 20;
  Soc soc(cfg);
  (void)soc.run(1'000'000);
  EXPECT_GT(soc.trace().count_of(sim::TraceKind::kSecpolReq), 0u);
  EXPECT_GT(soc.trace().count_of(sim::TraceKind::kTransOnBus), 0u);
  EXPECT_GT(soc.trace().count_of(sim::TraceKind::kCipherOp) +
                soc.trace().count_of(sim::TraceKind::kIntegrityOp),
            0u);
}

}  // namespace
}  // namespace secbus::soc
