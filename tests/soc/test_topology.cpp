// Topology equivalence and multi-segment SoC integration.
//
// The load-bearing test here is Section5GoldenEquivalence: the one-segment
// fabric must reproduce the legacy single-SystemBus results bit for bit.
// The golden numbers were captured from the pre-fabric tree (PR 2 head,
// commit a3a9bd2) running `secbus_cli run section5`.
#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "soc/presets.hpp"
#include "soc/soc.hpp"

namespace secbus {
namespace {

TEST(TopologyEquivalence, Section5GoldenEquivalence) {
  soc::Soc system(soc::section5_config());
  const soc::SocResults r = system.run(30'000'000);

  // Pre-refactor golden values (legacy single bus, seed 42, 3 CPUs, full
  // protection, 300 txns/cpu).
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.cycles, 98167u);
  EXPECT_EQ(r.transactions_ok, 900u);
  EXPECT_EQ(r.transactions_failed, 0u);
  EXPECT_EQ(r.alerts, 0u);
  EXPECT_EQ(r.bytes_moved, 7953u);
  EXPECT_NEAR(r.avg_access_latency, 318.134, 5e-4);
  EXPECT_NEAR(r.bus_occupancy, 0.999817, 5e-7);
}

TEST(TopologyEquivalence, FlatSocIsStructurallyLegacy) {
  soc::Soc system(soc::tiny_test_config());
  EXPECT_EQ(system.fabric().segment_count(), 1u);
  EXPECT_TRUE(system.fabric().bridges().empty());
  EXPECT_EQ(system.bus().name(), "system_bus");
  EXPECT_EQ(system.cpu_segment(0), 0u);
}

TEST(TopologySpec, LabelsAndSegmentCounts) {
  EXPECT_EQ(soc::TopologySpec::flat().label(), "flat");
  EXPECT_EQ(soc::TopologySpec::star(4).label(), "star4");
  EXPECT_EQ(soc::TopologySpec::mesh(2, 2).label(), "mesh2x2");
  EXPECT_EQ(soc::TopologySpec::flat().segment_count(), 1u);
  EXPECT_EQ(soc::TopologySpec::star(4).segment_count(), 5u);
  EXPECT_EQ(soc::TopologySpec::mesh(4, 4).segment_count(), 16u);
}

TEST(MultiSegmentSoc, MeshPlacementSpreadsCpus) {
  soc::SocConfig cfg = soc::mesh2x2_config();
  cfg.transactions_per_cpu = 20;
  soc::Soc system(cfg);
  ASSERT_EQ(system.fabric().segment_count(), 4u);
  for (std::size_t i = 0; i < cfg.processors; ++i) {
    EXPECT_EQ(system.cpu_segment(i), i % 4);
  }
  // Every non-memory segment got its CPUs' masters.
  for (std::size_t seg = 1; seg < 4; ++seg) {
    EXPECT_FALSE(system.fabric().segment(seg).master_stats().empty());
  }
}

TEST(MultiSegmentSoc, StarKeepsHubForMemoriesAndDma) {
  soc::SocConfig cfg = soc::star32_config();
  cfg.transactions_per_cpu = 5;
  soc::Soc system(cfg);
  ASSERT_EQ(system.fabric().segment_count(), 5u);
  for (std::size_t i = 0; i < cfg.processors; ++i) {
    EXPECT_EQ(system.cpu_segment(i), 1 + (i % 4));
  }
  // Hub hosts only the dedicated IP's master interface.
  ASSERT_EQ(system.fabric().segment(0).master_stats().size(), 1u);
  EXPECT_EQ(system.fabric().segment(0).master_stats().front().name, "dma");
}

TEST(MultiSegmentSoc, MeshRunCompletesAndCrossesBridges) {
  soc::SocConfig cfg = soc::mesh2x2_config();
  cfg.transactions_per_cpu = 40;
  soc::Soc system(cfg);
  const soc::SocResults r = system.run(10'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.transactions_ok, 8u * 40u);
  EXPECT_EQ(r.transactions_failed, 0u);

  std::uint64_t forwarded = 0;
  for (const auto& bridge : system.fabric().bridges()) {
    forwarded += bridge->stats().forwarded;
  }
  EXPECT_GT(forwarded, 0u);
  // Percentiles populated and ordered.
  EXPECT_GT(r.latency_p50, 0u);
  EXPECT_LE(r.latency_p50, r.latency_p95);
  EXPECT_LE(r.latency_p95, r.latency_p99);
  EXPECT_LE(r.latency_p99, r.latency_max);
}

TEST(MultiSegmentSoc, Mesh4x4DeepChainsMakeProgress) {
  // Regression for the circuit-switched wait-compounding livelock: 16 CPUs
  // on a 4x4 mesh (up to 6 bridge hops) must finish in a sane cycle count,
  // not stall with booking tails running away into the future.
  soc::SocConfig cfg = soc::mesh4x4_config();
  cfg.protection = soc::ProtectionLevel::kPlaintext;
  cfg.transactions_per_cpu = 40;
  soc::Soc system(cfg);
  const soc::SocResults r = system.run(2'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.transactions_ok, 16u * 40u);
  EXPECT_LT(r.latency_p99, 5'000u);
}

TEST(MultiSegmentSoc, MeshRunsAreDeterministic) {
  soc::SocConfig cfg = soc::mesh2x2_config();
  cfg.transactions_per_cpu = 30;
  soc::Soc a(cfg);
  soc::Soc b(cfg);
  const soc::SocResults ra = a.run(10'000'000);
  const soc::SocResults rb = b.run(10'000'000);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.transactions_ok, rb.transactions_ok);
  EXPECT_EQ(ra.latency_p99, rb.latency_p99);
  EXPECT_DOUBLE_EQ(ra.avg_access_latency, rb.avg_access_latency);
  EXPECT_DOUBLE_EQ(ra.bus_occupancy, rb.bus_occupancy);
}

TEST(MultiSegmentSoc, PoliciesInstallKeyedBySegment) {
  soc::SocConfig cfg = soc::mesh2x2_config();
  soc::Soc system(cfg);
  auto& cm = system.config_mem();
  for (std::size_t i = 0; i < cfg.processors; ++i) {
    EXPECT_EQ(cm.segment_of(static_cast<core::FirewallId>(soc::kFwCpuBase + i)),
              system.cpu_segment(i));
  }
  EXPECT_EQ(cm.segment_of(soc::kFwBram), 0u);
  EXPECT_EQ(cm.segment_of(soc::kFwLcf), 0u);
  EXPECT_EQ(cm.segment_of(soc::kFwDma), 0u);
  EXPECT_GE(cm.policies_on_segment(0), 3u);
}

TEST(MultiSegmentSoc, ScriptedMasterDefaultsToRemotestSegment) {
  soc::SocConfig cfg = soc::tiny_test_config();
  cfg.topology = soc::TopologySpec::mesh(2, 2);
  soc::Soc system(cfg);
  auto& mal = system.add_scripted_master("probe", system.cpu_policy(0));
  (void)mal;
  // Farthest corner of the 2x2 mesh from the memory segment is 3.
  const auto& stats = system.fabric().segment(3).master_stats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats.back().name, "probe");
}

TEST(MultiSegmentSoc, FabricContainmentScenarioContainsHijack) {
  const scenario::NamedScenario* entry =
      scenario::find_scenario("fabric_containment");
  ASSERT_NE(entry, nullptr);
  const scenario::JobResult r = scenario::run_scenario(entry->spec);
  EXPECT_TRUE(r.soc.completed);
  EXPECT_TRUE(r.attack_ran);
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.contained);
  EXPECT_EQ(r.topology, "mesh2x2");
  EXPECT_EQ(r.segments, 4u);
  EXPECT_EQ(r.max_hops, 2u);
}

TEST(MultiSegmentSoc, TopologySweepAxisExpands) {
  const scenario::NamedScenario* entry =
      scenario::find_scenario("fabric_scaling");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->axes.topology.size(), 4u);
  const auto jobs = scenario::expand(entry->spec, entry->axes);
  ASSERT_EQ(jobs.size(), 12u);
  EXPECT_NE(jobs[0].variant.find("topology=flat"), std::string::npos);
  EXPECT_NE(jobs.back().variant.find("topology=mesh4x4"), std::string::npos);
}

}  // namespace
}  // namespace secbus
