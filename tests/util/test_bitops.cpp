#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include <array>

namespace secbus::util {
namespace {

TEST(BitOps, Rotations) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 0x00000001u);
  EXPECT_EQ(rotr32(0x00000001u, 1), 0x80000000u);
  EXPECT_EQ(rotl64(0x8000000000000000ULL, 1), 1ULL);
  EXPECT_EQ(rotr64(1ULL, 1), 0x8000000000000000ULL);
  EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
}

TEST(BitOps, BigEndianRoundTrip32) {
  std::uint8_t buf[4];
  store_be32(buf, 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(buf[1], 0xAD);
  EXPECT_EQ(buf[2], 0xBE);
  EXPECT_EQ(buf[3], 0xEF);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);
}

TEST(BitOps, BigEndianRoundTrip64) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFULL);
}

TEST(BitOps, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  store_le32(buf, 0xDEADBEEFu);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(load_le32(buf), 0xDEADBEEFu);
  store_le64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0123456789ABCDEFULL);
}

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(BitOps, AlignUpDown) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
  EXPECT_EQ(align_down(17, 16), 16u);
  EXPECT_EQ(align_down(15, 16), 0u);
  EXPECT_EQ(align_down(32, 16), 32u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(100, 7), 15u);
}

TEST(BitOps, Log2Pow2) {
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2), 1u);
  EXPECT_EQ(log2_pow2(1024), 10u);
  EXPECT_EQ(log2_pow2(1ULL << 50), 50u);
}

TEST(BitOps, ConstantTimeEqual) {
  const std::array<std::uint8_t, 4> a{1, 2, 3, 4};
  const std::array<std::uint8_t, 4> b{1, 2, 3, 4};
  const std::array<std::uint8_t, 4> c{1, 2, 3, 5};
  const std::array<std::uint8_t, 3> shorter{1, 2, 3};
  EXPECT_TRUE(ct_equal({a.data(), a.size()}, {b.data(), b.size()}));
  EXPECT_FALSE(ct_equal({a.data(), a.size()}, {c.data(), c.size()}));
  EXPECT_FALSE(ct_equal({a.data(), a.size()}, {shorter.data(), shorter.size()}));
  EXPECT_TRUE(ct_equal({a.data(), 0}, {b.data(), 0}));  // empty == empty
}

}  // namespace
}  // namespace secbus::util
