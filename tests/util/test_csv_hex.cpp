#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/hexdump.hpp"

namespace secbus::util {
namespace {

TEST(Csv, BasicRows) {
  CsvWriter csv;  // in-memory
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  EXPECT_EQ(csv.buffer(), "a,b\n1,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "/secbus_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"x"});
    csv.row({"42"});
    csv.flush();
    EXPECT_TRUE(csv.ok());
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "x\n42\n");
  std::remove(path.c_str());
}

TEST(Hex, EncodeDecode) {
  const std::vector<std::uint8_t> bytes{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(to_hex({bytes.data(), bytes.size()}), "deadbeef");
  bool ok = false;
  EXPECT_EQ(from_hex("deadbeef", &ok), bytes);
  EXPECT_TRUE(ok);
  EXPECT_EQ(from_hex("DEADBEEF", &ok), bytes);
  EXPECT_TRUE(ok);
}

TEST(Hex, RejectsMalformed) {
  bool ok = true;
  EXPECT_TRUE(from_hex("abc", &ok).empty());  // odd length
  EXPECT_FALSE(ok);
  ok = true;
  EXPECT_TRUE(from_hex("zz", &ok).empty());  // bad digit
  EXPECT_FALSE(ok);
}

TEST(Hex, EmptyIsValid) {
  bool ok = false;
  EXPECT_TRUE(from_hex("", &ok).empty());
  EXPECT_TRUE(ok);
  EXPECT_EQ(to_hex({}), "");
}

TEST(Hexdump, FormatsOffsetsAndAscii) {
  std::vector<std::uint8_t> data(20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>('A' + i);
  }
  const std::string dump = hexdump({data.data(), data.size()}, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("41 42 43"), std::string::npos);
  EXPECT_NE(dump.find("ABCDEFGH"), std::string::npos);
  // Two lines for 20 bytes.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(Hexdump, NonPrintableAsDots) {
  const std::vector<std::uint8_t> data{0x00, 0x1F, 0x41};
  const std::string dump = hexdump({data.data(), data.size()});
  EXPECT_NE(dump.find("..A"), std::string::npos);
}

}  // namespace
}  // namespace secbus::util
