// util::Json: parsing, exact-integer round trips, emission, and error
// positions — the substrate campaign files stand on.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace secbus::util {
namespace {

Json parse_ok(const std::string& text) {
  Json j;
  std::string error;
  EXPECT_TRUE(Json::parse(text, j, &error)) << error;
  return j;
}

std::string parse_error(const std::string& text) {
  Json j;
  std::string error;
  EXPECT_FALSE(Json::parse(text, j, &error)) << "parsed: " << text;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(parse_ok("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse_ok("-2e3").as_double(), -2000.0);
}

TEST(Json, IntegersAreExact) {
  // Full uint64 range: doubles would mangle this seed-sized value.
  const Json j = parse_ok("18446744073709551615");
  EXPECT_TRUE(j.is_integer());
  std::uint64_t u = 0;
  EXPECT_TRUE(j.to_u64(u));
  EXPECT_EQ(u, 18446744073709551615ULL);

  std::int64_t i = 0;
  EXPECT_TRUE(parse_ok("-9223372036854775808").to_i64(i));
  EXPECT_EQ(i, std::numeric_limits<std::int64_t>::min());

  // Fractions and exponents are not integers.
  EXPECT_FALSE(parse_ok("1.0").is_integer());
  EXPECT_FALSE(parse_ok("1e2").is_integer());
  EXPECT_FALSE(parse_ok("-1").to_u64(u));
}

TEST(Json, IntegerDumpRoundTrips) {
  const std::string text = "18446744073709551615";
  EXPECT_EQ(parse_ok(text).dump(0), text);
  EXPECT_EQ(Json::number(std::uint64_t{42}).dump(0), "42");
  EXPECT_EQ(Json::number(std::int64_t{-7}).dump(0), "-7");
}

TEST(Json, ObjectsKeepInsertionOrderAndSupportLookup) {
  const Json j = parse_ok(R"({"b": 1, "a": 2, "c": [1, 2, 3]})");
  ASSERT_TRUE(j.is_object());
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.members()[0].first, "b");
  EXPECT_EQ(j.members()[1].first, "a");
  ASSERT_NE(j.find("c"), nullptr);
  EXPECT_EQ(j.find("c")->items().size(), 3u);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  const Json j = parse_ok(R"("a\"b\\c\ndAé")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd" "A" "\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, DumpParsesBack) {
  const std::string text =
      R"({"name":"x","n":3,"f":0.25,"flag":true,"none":null,)"
      R"("arr":[1,"two",{"k":"v"}]})";
  const Json j = parse_ok(text);
  const Json again = parse_ok(j.dump());       // pretty
  const Json compact = parse_ok(j.dump(0));    // compact
  EXPECT_EQ(again.dump(0), compact.dump(0));
  EXPECT_EQ(again.find("arr")->items()[2].find("k")->as_string(), "v");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  EXPECT_NE(parse_error("{\n  \"a\": 1,\n  bad\n}").find("line 3"),
            std::string::npos);
  EXPECT_NE(parse_error("[1, 2,]").find("column"), std::string::npos);
}

TEST(Json, RejectsMalformedDocuments) {
  parse_error("");
  parse_error("{");
  parse_error("[1 2]");
  parse_error("{\"a\" 1}");
  parse_error("{\"a\": 1} extra");
  parse_error("01");
  parse_error("1.");
  parse_error("\"unterminated");
  parse_error("nulL");
  parse_error("{\"a\": 1, \"a\": 2}");  // duplicate keys rejected
}

TEST(Json, BuilderApi) {
  Json j = Json::object();
  j.set("x", Json::number(std::uint64_t{1}));
  j.set("x", Json::number(std::uint64_t{2}));  // replaces
  Json arr = Json::array();
  arr.push(Json::string("a"));
  j.set("list", std::move(arr));
  EXPECT_EQ(j.dump(0), R"({"x":2,"list":["a"]})");
}

}  // namespace
}  // namespace secbus::util
