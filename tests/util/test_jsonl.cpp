// JSONL append/replay: per-record durability and torn-tail recovery — the
// properties campaign checkpoints stand on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "util/json.hpp"
#include "util/jsonl.hpp"

namespace secbus::util {
namespace {

class JsonlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("secbus_jsonl_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()) +
              ".jsonl"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Json record(std::uint64_t index) {
  Json j = Json::object();
  j.set("index", Json::number(index));
  j.set("label", Json::string("job-" + std::to_string(index)));
  return j;
}

TEST_F(JsonlTest, RoundTripsRecordsInOrder) {
  {
    JsonlWriter writer;
    ASSERT_TRUE(writer.open(path_));
    for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(writer.append(record(i)));
    EXPECT_TRUE(writer.ok());
  }
  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    std::uint64_t index = 0;
    ASSERT_TRUE(out[i].find("index")->to_u64(index));
    EXPECT_EQ(index, i);
  }
}

TEST_F(JsonlTest, AppendModeExtendsAnExistingFile) {
  {
    JsonlWriter writer;
    ASSERT_TRUE(writer.open(path_));
    ASSERT_TRUE(writer.append(record(0)));
  }
  {
    JsonlWriter writer;  // reopen: append, never truncate
    ASSERT_TRUE(writer.open(path_));
    ASSERT_TRUE(writer.append(record(1)));
  }
  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(JsonlTest, TornTrailingLineIsDroppedNotFatal) {
  {
    JsonlWriter writer;
    ASSERT_TRUE(writer.open(path_));
    ASSERT_TRUE(writer.append(record(0)));
    ASSERT_TRUE(writer.append(record(1)));
  }
  // Simulate a crash mid-append: a record cut off without its newline.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char torn[] = "{\"index\": 2, \"lab";
  std::fwrite(torn, 1, sizeof torn - 1, f);
  std::fclose(f);

  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  EXPECT_EQ(out.size(), 2u);  // the torn record is gone, the prefix survives
}

TEST_F(JsonlTest, CrashResumeCrashLosesOnlyTheTornRecords) {
  // Run 1 crashes mid-append; run 2 reopens (must not weld onto the
  // fragment), appends more, and crashes mid-append again; run 3 replays.
  // Every complete record from both runs must survive.
  {
    JsonlWriter writer;
    ASSERT_TRUE(writer.open(path_));
    ASSERT_TRUE(writer.append(record(0)));
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"index\": 1, \"la";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  {
    JsonlWriter writer;  // resume: terminates the fragment first
    ASSERT_TRUE(writer.open(path_));
    ASSERT_TRUE(writer.append(record(2)));
    ASSERT_TRUE(writer.append(record(3)));
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"ind";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  ASSERT_EQ(out.size(), 3u);  // records 0, 2, 3; both fragments dropped
  std::uint64_t index = 0;
  ASSERT_TRUE(out[1].find("index")->to_u64(index));
  EXPECT_EQ(index, 2u);
}

TEST_F(JsonlTest, CompleteUnterminatedTailIsKept) {
  // Writer died between the record bytes and the newline: record complete,
  // terminator missing — it must still replay.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char text[] = "{\"index\": 0}\n{\"index\": 1}";
  std::fwrite(text, 1, sizeof text - 1, f);
  std::fclose(f);

  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(JsonlTest, MissingFileReportsFailure) {
  std::vector<Json> out;
  std::string error;
  EXPECT_FALSE(read_jsonl(path_ + ".does-not-exist", out, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(JsonlTest, BlankLinesAreSkipped) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char text[] = "{\"a\": 1}\n\n{\"b\": 2}\n";
  std::fwrite(text, 1, sizeof text - 1, f);
  std::fclose(f);

  std::vector<Json> out;
  ASSERT_TRUE(read_jsonl(path_, out));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace secbus::util
