#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace secbus::util {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for SplitMix64 seeded with 0 (widely published).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06C45D188009454FULL);
}

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a(123456789);
  Xoshiro256 b(123456789);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  Xoshiro256 rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) {
    if (rng.next() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256, BelowStaysInBounds) {
  Xoshiro256 rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 33}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusiveBounds) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo = saw_lo || v == 10;
    saw_hi = saw_hi || v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(3);
  double sum = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro256, ChanceApproximatesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(Xoshiro256, FillCoversAllBytesDeterministically) {
  Xoshiro256 a(77), b(77);
  std::vector<std::uint8_t> buf_a(37, 0), buf_b(37, 0);
  a.fill(buf_a);
  b.fill(buf_b);
  EXPECT_EQ(buf_a, buf_b);
  // 37 random bytes should not be all zero.
  bool nonzero = false;
  for (auto byte : buf_a) nonzero = nonzero || byte != 0;
  EXPECT_TRUE(nonzero);
}

TEST(Xoshiro256, WeightedPickRespectsZeroWeights) {
  Xoshiro256 rng(13);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rng.weighted_pick(std::span<const double>(weights, 3)), 1u);
  }
}

TEST(Xoshiro256, WeightedPickApproximatesRatios) {
  Xoshiro256 rng(17);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.weighted_pick(std::span<const double>(weights, 2))];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / kTrials, 0.75, 0.02);
}

TEST(Xoshiro256, WeightedPickAllZeroFallsBackToUniform) {
  Xoshiro256 rng(19);
  const double weights[] = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.weighted_pick(std::span<const double>(weights, 3)));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Xoshiro256, SubstreamsAreIndependentAndStable) {
  Xoshiro256 master(99);
  Xoshiro256 s0 = master.substream(0);
  Xoshiro256 s1 = master.substream(1);
  Xoshiro256 s0_again = master.substream(0);
  EXPECT_EQ(s0.next(), s0_again.next());
  EXPECT_NE(s0.next(), s1.next());
}

// Property sweep: Lemire rejection stays unbiased-ish across bounds.
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, RoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound * 31 + 7);
  std::vector<int> counts(static_cast<std::size_t>(bound), 0);
  const int per_bucket = 400;
  const int trials = static_cast<int>(bound) * per_bucket;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(bound))];
  }
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_GT(counts[static_cast<std::size_t>(v)], per_bucket / 2)
        << "value " << v << " undersampled";
    EXPECT_LT(counts[static_cast<std::size_t>(v)], per_bucket * 2)
        << "value " << v << " oversampled";
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 31));

}  // namespace
}  // namespace secbus::util
