#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace secbus::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1);
  s.add(2);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, MergeMatchesSequentialStreaming) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat whole;
  for (double x : xs) whole.add(x);

  RunningStat left, right;
  for (int i = 0; i < 3; ++i) left.add(xs[i]);
  for (int i = 3; i < 8; ++i) right.add(xs[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat filled;
  filled.add(1.0);
  filled.add(3.0);

  RunningStat target;
  target.merge(filled);  // empty <- filled adopts everything
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);

  const RunningStat empty;
  target.merge(empty);  // filled <- empty is a no-op
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 3.0);
}

TEST(Counter, IncAndReset) {
  Counter c("grants");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(c.name(), "grants");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndCounts) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 2.0);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, PercentileMedianOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.5);
  EXPECT_NEAR(h.percentile(0), 0.0, 1.5);
  EXPECT_NEAR(h.percentile(100), 100.0, 1.5);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(0.0, 10.0, 2);
  h.add(1);
  h.add(-1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Ratios, PercentOverhead) {
  EXPECT_NEAR(percent_overhead(113.43, 100.0), 13.43, 1e-9);
  EXPECT_DOUBLE_EQ(percent_overhead(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_overhead(50.0, 100.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_overhead(5.0, 0.0), 0.0);  // guarded
}

TEST(Ratios, SafeRatio) {
  EXPECT_DOUBLE_EQ(safe_ratio(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(safe_ratio(1.0, 0.0), 0.0);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(LatencyHistogram, ExactNearestRankPercentiles) {
  LatencyHistogram h;
  for (std::uint64_t c = 1; c <= 100; ++c) h.add(c);
  // Nearest-rank over 100 samples 1..100: p_q is exactly q.
  EXPECT_EQ(h.p50(), 50u);
  EXPECT_EQ(h.p95(), 95u);
  EXPECT_EQ(h.p99(), 99u);
  EXPECT_EQ(h.percentile(100), 100u);
  EXPECT_EQ(h.percentile(0), 1u);  // rank clamps to the first sample
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(LatencyHistogram, SkewedDistributionIsExact) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.add(7);
  h.add(4000);  // single tail sample
  EXPECT_EQ(h.p50(), 7u);
  EXPECT_EQ(h.p95(), 7u);
  EXPECT_EQ(h.p99(), 7u);  // rank 99 of 100 still lands on the mode
  EXPECT_EQ(h.percentile(100), 4000u);
}

TEST(LatencyHistogram, MergeMatchesSingleStream) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (std::uint64_t c = 1; c <= 60; ++c) {
    a.add(c);
    combined.add(c);
  }
  for (std::uint64_t c = 500; c <= 540; ++c) {
    b.add(c);
    combined.add(c);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAndFromEmpty) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.add(10);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 1u);
  LatencyHistogram target;
  target.merge(a);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.p50(), 10u);
}

TEST(LatencyHistogram, OverflowSaturatesButTracksExactMax) {
  LatencyHistogram h;
  h.add(3);
  h.add(LatencyHistogram::kTrackedMax + 123);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), LatencyHistogram::kTrackedMax + 123);
  EXPECT_EQ(h.p50(), 3u);
  // The rank falling into the overflow bucket reports the tracked max.
  EXPECT_EQ(h.percentile(100), LatencyHistogram::kTrackedMax + 123);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.add(5);
  h.add(LatencyHistogram::kTrackedMax + 1);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

}  // namespace
}  // namespace secbus::util
