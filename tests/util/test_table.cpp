#include "util/table.hpp"

#include <gtest/gtest.h>

namespace secbus::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Caption");
  t.set_header({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Caption"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.set_header({"A", "B", "C"});
  t.add_row({"only-one"});
  const std::string out = t.render();
  // Row renders without crashing and contains the cell.
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTable, SeparatorAddsRule) {
  TextTable t;
  t.set_header({"X"});
  t.add_row({"1"});
  const auto lines_before = t.render();
  t.add_separator();
  const auto lines_after = t.render();
  EXPECT_GT(lines_after.size(), lines_before.size());
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_thousands(0), "0");
  EXPECT_EQ(TextTable::fmt_thousands(999), "999");
  EXPECT_EQ(TextTable::fmt_thousands(1000), "1,000");
  EXPECT_EQ(TextTable::fmt_thousands(12895), "12,895");
  EXPECT_EQ(TextTable::fmt_thousands(1234567), "1,234,567");
  EXPECT_EQ(TextTable::fmt_percent(13.43), "+13.43%");
  EXPECT_EQ(TextTable::fmt_percent(-4.2, 1), "-4.2%");
}

TEST(TextTable, ColumnsAlign) {
  TextTable t;
  t.set_header({"Component", "Count"});
  t.add_row({"a", "1"});
  t.add_row({"long-component-name", "100000"});
  const std::string out = t.render();
  // Every rendered line has the same width (alignment invariant).
  std::size_t first_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (first_len == std::string::npos) {
      first_len = len;
    } else {
      EXPECT_EQ(len, first_len);
    }
    pos = eol + 1;
  }
}

}  // namespace
}  // namespace secbus::util
