// secbus_cli — command-line driver for the secured-MPSoC simulator.
//
// Scenario-engine subcommands:
//
//   secbus_cli list-scenarios
//       Prints the built-in scenario catalog (name, jobs, description).
//
//   secbus_cli crypto-info
//       Prints detected CPU crypto features, the selected crypto backend
//       (portable | scalar | accel) and the SECBUS_CRYPTO_BACKEND override
//       in effect, so a run's datapath is always on record.
//
//   secbus_cli run <scenario> [options]
//       Expands the named scenario over its default sweep axes and executes
//       the jobs on a worker pool. Emits a per-job table plus aggregate
//       stats, and mirrors the batch as CSV and JSON reports.
//     --jobs N          worker threads (default 1; 0 = all hardware threads)
//     --repeats N       run every job N times with derived seeds
//     --csv PATH        CSV report path   (default <scenario>.csv)
//     --json PATH       JSON report path  (default <scenario>.json)
//     --no-files        skip the CSV/JSON reports
//     --max-cycles N    override the scenario's cycle cap
//     --quiet           aggregate line only
//     --metrics         attach the per-job component-metric registry
//                       (obs::Registry) to the JSON reports
//     --trace PATH      run only the first expanded job, single-threaded,
//                       with a 1M-event trace ring, and export a Chrome
//                       trace-event JSON (load it in Perfetto / chrome://
//                       tracing) to PATH
//
//   secbus_cli sweep [base options] [axis options]
//       Builds a custom sweep over the Section-V system (or any registered
//       scenario via --scenario) and runs it like `run`.
//     --scenario NAME   base scenario (default section5)
//     --topology A,B    axis: interconnect fabrics (flat | star<leaves> |
//                       mesh<rows>x<cols>, e.g. star4, mesh2x2)
//     --cpus A,B,...    axis: processor counts
//     --security A,B    axis: none|distributed|centralized
//     --protection A,B  axis: plaintext|cipher|full
//     --seeds A,B,...   axis: workload seeds
//     --extra-rules A,B axis: dummy policy rules per firewall
//     --line-bytes A,B  axis: LCF protection line size
//     --external A,B    axis: external-traffic fraction
//       plus --jobs/--repeats/--csv/--json/--no-files/--max-cycles/--quiet.
//
//   secbus_cli campaign run <file.json> [options]
//       Loads a JSON campaign file (base ScenarioSpec + attack/protection/
//       topology/seed grid), expands it into jobs and runs them like `run`.
//       On top of the per-job reports it aggregates *security outcomes* per
//       grid cell — detection/containment/victim-intact rates and detection
//       latency p50/p95/p99 — and prints the weakest cells.
//     --out DIR         report directory (default bench/out)
//     --cells-csv PATH  per-cell CSV   (default <out>/<name>.cells.csv)
//     --json PATH       campaign JSON  (default <out>/<name>.campaign.json)
//     --csv PATH        per-job CSV    (default <out>/<name>.jobs.csv)
//     --shard i/N       run only shard i of N (stable round-robin over the
//                       job index) and write <out>/<name>.shard-i-of-N.json
//                       instead of the aggregate reports; shard runs
//                       checkpoint to <out>/<name>.shard-i-of-N.ckpt.jsonl
//                       by default, so re-running resumes after a crash
//     --spawn N         fork N local single-shard worker processes, wait,
//                       merge their shard files and emit the normal reports
//                       (byte-identical to an unsharded run)
//     --checkpoint PATH crash-safe JSONL checkpoint (resume + append).
//                       Checkpointing is on by default for --shard/--spawn
//                       (per-shard paths derived under --out; an explicit
//                       PATH is rejected with --spawn) and opt-in via this
//                       flag for plain runs
//     --no-checkpoint   disable checkpointing
//     --no-setup-cache  disable the per-process SoC-setup memo cache
//                       (formatted hash trees / memory images); results are
//                       bit-identical either way — this exists for baseline
//                       benchmarking
//       plus --jobs/--repeats/--no-files/--max-cycles/--quiet (--jobs is
//       threads per process; with --spawn it applies to each worker).
//
//   secbus_cli campaign merge <shard.json>... [--out DIR] [options]
//       Recombines shard result files (all N of them) into the identical
//       cells CSV + campaign JSON + weakest-cell ranking a single-process
//       run would emit. Validates campaign identity, grid fingerprints and
//       exactly-once job coverage before writing anything.
//
//   secbus_cli campaign validate <file.json>...
//       Parses + validates each file, printing the job/cell counts or the
//       offending JSON path. Exit 1 on the first invalid file.
//
//   secbus_cli campaign status [DIR]
//       Scans DIR (default bench/out) for shard progress sidecars
//       (*.progress.jsonl, written by --shard/--spawn workers) and renders
//       each shard's latest record: done/total, throughput, setup-cache hit
//       rate, finished/running. Exit 1 when no sidecars are found.
//
//   secbus_cli campaign export-builtin [--dir DIR]
//       Writes every builtin scenario as an equivalent campaign file
//       (default bench/out/builtin-campaigns/): the registry as data.
//
//   secbus_cli campaign serve <file.json> [options]
//       Fleet control plane: listens on TCP, hands out shard leases to
//       `campaign worker` processes, tracks them via heartbeats, reassigns
//       a shard whose worker stops heartbeating (the replacement resumes
//       from the shard checkpoint), and — once every shard's result has
//       landed — merges and emits the exact artifacts a single-process
//       `campaign run` would (byte-identical, killed workers included).
//     --port N            TCP port (default 0 = ephemeral; the bound port
//                         is printed on the "fleet: serving" line)
//     --shards N          lease granularity (default 4)
//     --out DIR           shard files, progress sidecars, reports
//     --lease-timeout MS  reassign after this long without a heartbeat
//                         (default 10000)
//     --heartbeat MS      heartbeat cadence announced to workers
//                         (default 2000)
//     --listen-any        bind 0.0.0.0 instead of loopback
//     --http-port N       also serve GET /metrics (Prometheus text) and
//                         GET /status (JSON lease table) on this port,
//                         polled from the same loop as the fleet socket
//                         (0 = ephemeral; printed on an "http:" line)
//     --no-audit          skip the <out>/<name>.fleet-audit.jsonl lease
//                         audit log (pure observability; artifacts are
//                         identical either way)
//     --no-journal        skip the <out>/<name>.fleet-journal.jsonl lease
//                         journal (disables --resume for this run)
//     --resume            recover a killed server from its lease journal:
//                         journaled shard commits stay done, everything
//                         else returns to pending, and the server epoch
//                         bumps so results minted under the dead
//                         incarnation are refused (zombie fencing)
//       plus --jobs/--repeats/--max-cycles/--metrics/--quiet etc. —
//       repeats/max-cycles/metrics shape the grid and are announced to
//       workers, which verify the resulting grid fingerprint.
//       SECBUS_CHAOS=kill_server_after:<n> _Exit()s the server right after
//       the n-th journaled commit (fault injection for --resume);
//       net:drop=..,delay_ms=a..b,... makes the server's side of every
//       connection lossy too.
//
//   secbus_cli campaign worker <host:port> [options]
//       Fleet worker: connects (bounded exponential backoff), verifies the
//       announced grid fingerprint against its own expansion, then runs
//       granted shards — checkpointing under --out and heartbeating
//       progress — until the server says done. SECBUS_CHAOS=kill_after:<n>
//       makes the worker _Exit() after n checkpointed jobs (fault
//       injection for the reassignment path);
//       SECBUS_CHAOS="net:drop=0.05,delay_ms=0..20,reset=0.02,seed=7"
//       wraps the connection in a seeded lossy decorator (drops, delays,
//       duplicates, truncations, resets) — see campaign/chaos.hpp for the
//       full grammar; directives combine with ';'.
//     --jobs N        batch threads inside this worker (default 1)
//     --out DIR       checkpoint directory; share it across local workers
//                     (and the server) so reassignment resumes instead of
//                     recomputing
//     --id NAME       worker identity in leases/logs (default worker-<pid>)
//     --reconnect N   reconnect budget (default 5)
//     --backoff MS    initial backoff, doubles to 5000 (default 500)
//
//   secbus_cli campaign top <host:port> [--interval MS] [--once]
//       Live fleet view: polls the serve --http-port /status endpoint and
//       repaints a single-screen summary — lease table (shard, state,
//       owner, generation, deadline) plus one row per worker. Exits 0 when
//       the campaign finishes, 1 when the server becomes unreachable.
//
//   secbus_cli campaign timeline <audit.jsonl> [--out PATH]
//       Converts a fleet lease audit log into a Chrome trace-event JSON
//       fleet timeline (one track per worker, one span per lease, instants
//       for expiries and refusals) for Perfetto / chrome://tracing.
//
// Legacy single-run mode (kept for scripts): secbus_cli [--cpus N]
//   [--security M] [--protection L] [--external F] [--transactions N]
//   [--compute N] [--extra-rules N] [--line-bytes N] [--seed N]
//   [--max-cycles N] [--reconfig] [--report] [--quiet]
//
// Exit status: 0 when every executed job completed, 1 on timeout or usage
// error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/audit.hpp"
#include "campaign/campaign.hpp"
#include "campaign/fleet.hpp"
#include "campaign/report.hpp"
#include "crypto/backend.hpp"
#include "campaign/shard.hpp"
#include "campaign/telemetry.hpp"
#include "core/format_cache.hpp"
#include "net/http.hpp"
#include "obs/exposition.hpp"
#include "obs/fleet_timeline.hpp"
#include "obs/trace_export.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "soc/presets.hpp"
#include "soc/report.hpp"
#include "soc/soc.hpp"
#include "util/csv.hpp"
#include "util/fileio.hpp"
#include "util/table.hpp"

using namespace secbus;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list-scenarios\n"
      "       %s crypto-info\n"
      "       %s run <scenario> [--jobs N] [--repeats N] [--csv PATH]\n"
      "              [--json PATH] [--no-files] [--max-cycles N] [--quiet]\n"
      "              [--metrics] [--trace PATH]\n"
      "       %s sweep [--scenario NAME] [--topology A,B] [--cpus A,B]\n"
      "              [--security A,B] [--protection A,B] [--seeds A,B]\n"
      "              [--extra-rules A,B] [--line-bytes A,B] [--external A,B]\n"
      "              [run options]\n"
      "       %s campaign run <file.json> [--out DIR] [--cells-csv PATH]\n"
      "              [--shard i/N] [--spawn N] [--checkpoint PATH]\n"
      "              [--no-checkpoint] [--no-setup-cache] [run options]\n"
      "       %s campaign merge <shard.json>... [--out DIR] [run options]\n"
      "       %s campaign validate <file.json>...\n"
      "       %s campaign status [DIR]\n"
      "       %s campaign export-builtin [--dir DIR]\n"
      "       %s campaign serve <file.json> [--port N] [--shards N]\n"
      "              [--out DIR] [--lease-timeout MS] [--heartbeat MS]\n"
      "              [--listen-any] [--cells-csv PATH] [--http-port N]\n"
      "              [--no-audit] [--no-journal] [--resume] [run options]\n"
      "       %s campaign worker <host:port> [--jobs N] [--out DIR]\n"
      "              [--id NAME] [--reconnect N] [--backoff MS]\n"
      "              [--no-checkpoint] [--no-setup-cache] [--quiet]\n"
      "       %s campaign top <host:port> [--interval MS] [--once]\n"
      "       %s campaign timeline <audit.jsonl> [--out PATH]\n"
      "       %s [--cpus N] [--topology flat|starN|meshRxC]\n"
      "          [--security none|distributed|centralized]\n"
      "          [--protection plaintext|cipher|full] [--external F]\n"
      "          [--transactions N] [--compute N] [--extra-rules N]\n"
      "          [--line-bytes N] [--seed N] [--max-cycles N]\n"
      "          [--reconfig] [--report] [--quiet]\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
      argv0, argv0, argv0, argv0);
  std::exit(1);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != nullptr && end != text && *end == '\0';
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != nullptr && end != text && *end == '\0';
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Enum/topology parsing lives next to the enums (soc::parse_security_mode,
// soc::parse_protection_level, soc::parse_topology) and is shared with the
// campaign-file reader.

// Options shared by the `run` and `sweep` subcommands.
struct BatchCliOptions {
  unsigned jobs = 1;
  std::uint64_t repeats = 1;
  std::string csv_path;   // empty = default from scenario name
  std::string json_path;  // empty = default from scenario name
  bool no_files = false;
  std::uint64_t max_cycles = 0;  // 0 = keep the scenario's cap
  bool quiet = false;
  // Collect per-job component metrics (obs::Registry) into the JSON reports.
  bool metrics = false;
  // Non-empty: run only the first expanded job, single-threaded, with a
  // large event-trace ring, and export a Chrome/Perfetto trace here.
  std::string trace_path;
};

// Tries to consume argv[i] as a shared batch option; advances i past any
// value it takes. Returns false when the flag is not a batch option.
bool parse_batch_option(int argc, char** argv, int& i, BatchCliOptions& opt) {
  const std::string arg = argv[i];
  auto next = [&]() -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  std::uint64_t u = 0;
  if (arg == "--jobs" && parse_u64(next(), u) && u <= 256) {
    opt.jobs = static_cast<unsigned>(u);
  } else if (arg == "--repeats" && parse_u64(next(), u) && u >= 1 &&
             u <= 10'000) {
    opt.repeats = u;
  } else if (arg == "--csv") {
    opt.csv_path = next();
  } else if (arg == "--json") {
    opt.json_path = next();
  } else if (arg == "--no-files") {
    opt.no_files = true;
  } else if (arg == "--max-cycles" && parse_u64(next(), u) && u >= 1) {
    opt.max_cycles = u;
  } else if (arg == "--quiet") {
    opt.quiet = true;
  } else if (arg == "--metrics") {
    opt.metrics = true;
  } else if (arg == "--trace") {
    opt.trace_path = next();
  } else {
    return false;
  }
  return true;
}

// Applies the shared CLI post-processing to an expanded spec list: seed
// replication and the cycle-cap override. Every execution path — plain,
// sharded, spawned — prepares specs identically, so shard fingerprints and
// job order agree across processes and invocations.
std::vector<scenario::ScenarioSpec> prepare_specs(
    std::vector<scenario::ScenarioSpec> specs, const BatchCliOptions& opt) {
  specs = scenario::replicate_seeds(std::move(specs), opt.repeats);
  if (opt.max_cycles != 0) {
    for (auto& spec : specs) spec.max_cycles = opt.max_cycles;
  }
  return specs;
}

// Strided progress for many-job campaigns: ~20 updates total. The batch
// runner may invoke completion callbacks concurrently; printf is atomic per
// call, so lines interleave whole.
std::function<void(const scenario::JobResult&, std::size_t, std::size_t)>
strided_progress(std::size_t jobs) {
  std::size_t stride = jobs / 20;
  if (stride == 0) stride = 1;
  return [stride](const scenario::JobResult&, std::size_t done,
                  std::size_t total) {
    if (done % stride == 0 || done == total) {
      std::printf("  [%zu/%zu]\n", done, total);
      std::fflush(stdout);
    }
  };
}

// Shared execution core for run/sweep/campaign: worker-pool setup and
// progress reporting. Scenario runs print one line per finished job;
// campaigns (thousands of jobs) print ~20 strided updates instead.
std::vector<scenario::JobResult> execute_specs(
    const char* kind, const std::string& name,
    std::vector<scenario::ScenarioSpec> specs, const BatchCliOptions& opt,
    bool per_job_progress) {
  specs = prepare_specs(std::move(specs), opt);

  scenario::BatchOptions batch;
  batch.threads = opt.jobs;
  batch.hooks.collect_metrics = opt.metrics || !opt.trace_path.empty();
  if (!opt.trace_path.empty()) {
    // Big enough that a whole scenario run fits in the ring — exported
    // spans then reconcile exactly with the SoC's counters.
    batch.hooks.trace_capacity = std::size_t{1} << 20;
    batch.hooks.inspect = [&opt](soc::Soc& sys,
                                 const scenario::JobResult& r) {
      obs::TraceExportStats st;
      std::string terr;
      if (!obs::write_chrome_trace(opt.trace_path, sys.trace(), &terr, &st)) {
        std::fprintf(stderr, "error: trace export failed: %s\n", terr.c_str());
        return;
      }
      std::printf(
          "trace: %s — job '%s', %llu track(s), %llu bus span(s), "
          "%llu check span(s), %llu lifecycle span(s), %llu instant(s) "
          "(%llu alerts)\n",
          opt.trace_path.c_str(),
          r.variant.empty() ? r.name.c_str() : r.variant.c_str(),
          static_cast<unsigned long long>(st.tracks),
          static_cast<unsigned long long>(st.bus_spans),
          static_cast<unsigned long long>(st.check_spans),
          static_cast<unsigned long long>(st.lifecycle_spans),
          static_cast<unsigned long long>(st.instants),
          static_cast<unsigned long long>(st.alert_instants));
      std::fflush(stdout);
    };
  }
  if (!opt.quiet) {
    std::printf("%s %s: %zu job(s) on %u thread(s)\n", kind, name.c_str(),
                specs.size(), opt.jobs == 0 ? 0u : opt.jobs);
    if (per_job_progress) {
      batch.on_job_done = [](const scenario::JobResult& r, std::size_t done,
                             std::size_t total) {
        std::printf("  [%zu/%zu] %s %s\n", done, total,
                    r.variant.empty() ? r.name.c_str() : r.variant.c_str(),
                    r.soc.completed ? "done" : "TIMED OUT");
        std::fflush(stdout);
      };
    } else {
      batch.on_job_done = strided_progress(specs.size());
    }
  }
  return scenario::run_batch(specs, batch);
}

int run_jobs(const std::string& name, std::vector<scenario::ScenarioSpec> specs,
             const BatchCliOptions& options) {
  BatchCliOptions opt = options;
  if (!opt.trace_path.empty() && !specs.empty()) {
    // Tracing runs one job, single-threaded: one deterministic SoC whose
    // exported spans match its counters (see the trace example/test).
    specs.resize(1);
    opt.jobs = 1;
  }
  const std::vector<scenario::JobResult> results =
      execute_specs("scenario", name, std::move(specs), opt, true);
  const scenario::BatchAggregate aggregate =
      scenario::BatchAggregate::from(results);

  if (opt.quiet) {
    std::printf(
        "%s: %zu/%zu completed, latency %.1f +/- %.1f cyc "
        "(p50 %.1f, p95 %.1f, p99 %.1f), alerts %.0f\n",
        name.c_str(), aggregate.jobs_completed, aggregate.jobs_total,
        aggregate.latency.mean(), aggregate.latency.stddev(),
        aggregate.latency_p50, aggregate.latency_p95, aggregate.latency_p99,
        aggregate.alerts.sum());
  } else {
    std::fputs(scenario::render_batch_table(name, results, aggregate).c_str(),
               stdout);
  }

  bool reports_ok = true;
  if (!opt.no_files) {
    const std::string csv_path =
        opt.csv_path.empty() ? name + ".csv" : opt.csv_path;
    const std::string json_path =
        opt.json_path.empty() ? name + ".json" : opt.json_path;
    util::CsvWriter csv(csv_path);
    scenario::write_batch_csv(csv, results);
    csv.flush();
    const bool json_ok = util::write_file(
        json_path, scenario::batch_json(name, results, aggregate));
    reports_ok = csv.ok() && json_ok;
    if (!opt.quiet) {
      std::printf("reports: %s%s, %s%s\n", csv_path.c_str(),
                  csv.ok() ? "" : " (write failed)", json_path.c_str(),
                  json_ok ? "" : " (write failed)");
    }
    if (!csv.ok()) {
      std::fprintf(stderr, "error: failed to write %s\n", csv_path.c_str());
    }
    if (!json_ok) {
      std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
    }
  }

  return aggregate.jobs_completed == aggregate.jobs_total && reports_ok ? 0 : 1;
}

int cmd_list_scenarios() {
  util::TextTable table("Built-in scenarios (secbus_cli run <name>)");
  table.set_header({"name", "jobs", "attack", "description"});
  for (const auto& s : scenario::builtin_scenarios()) {
    table.add_row({s.spec.name, std::to_string(s.job_count()),
                   to_string(s.spec.attack.kind), s.spec.description});
  }
  table.print();
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string name = argv[2];
  const scenario::NamedScenario* entry = scenario::find_scenario(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; try list-scenarios\n",
                 name.c_str());
    return 1;
  }
  BatchCliOptions opt;
  for (int i = 3; i < argc; ++i) {
    if (!parse_batch_option(argc, argv, i, opt)) usage(argv[0]);
  }
  return run_jobs(name, scenario::expand(entry->spec, entry->axes), opt);
}

int cmd_sweep(int argc, char** argv) {
  std::string base_name = "section5";
  scenario::SweepAxes axes;
  BatchCliOptions opt;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (parse_batch_option(argc, argv, i, opt)) continue;
    if (arg == "--scenario") {
      base_name = next();
    } else if (arg == "--topology") {
      for (const auto& tok : split_commas(next())) {
        soc::TopologySpec topo;
        if (!soc::parse_topology(tok, topo)) usage(argv[0]);
        axes.topology.push_back(topo);
      }
    } else if (arg == "--cpus") {
      for (const auto& tok : split_commas(next())) {
        std::uint64_t u = 0;
        if (!parse_u64(tok.c_str(), u) || u < 1 || u > 63) usage(argv[0]);
        axes.cpus.push_back(static_cast<std::size_t>(u));
      }
    } else if (arg == "--security") {
      for (const auto& tok : split_commas(next())) {
        soc::SecurityMode mode;
        if (!soc::parse_security_mode(tok, mode)) usage(argv[0]);
        axes.security.push_back(mode);
      }
    } else if (arg == "--protection") {
      for (const auto& tok : split_commas(next())) {
        soc::ProtectionLevel level;
        if (!soc::parse_protection_level(tok, level)) usage(argv[0]);
        axes.protection.push_back(level);
      }
    } else if (arg == "--seeds") {
      for (const auto& tok : split_commas(next())) {
        std::uint64_t u = 0;
        if (!parse_u64(tok.c_str(), u)) usage(argv[0]);
        axes.seeds.push_back(u);
      }
    } else if (arg == "--extra-rules") {
      for (const auto& tok : split_commas(next())) {
        std::uint64_t u = 0;
        if (!parse_u64(tok.c_str(), u) || u > 1024) usage(argv[0]);
        axes.extra_rules.push_back(static_cast<std::size_t>(u));
      }
    } else if (arg == "--line-bytes") {
      for (const auto& tok : split_commas(next())) {
        std::uint64_t u = 0;
        if (!parse_u64(tok.c_str(), u) ||
            (u != 16 && u != 32 && u != 64 && u != 128)) {
          usage(argv[0]);
        }
        axes.line_bytes.push_back(u);
      }
    } else if (arg == "--external") {
      for (const auto& tok : split_commas(next())) {
        double d = 0.0;
        if (!parse_double(tok.c_str(), d) || d < 0.0 || d > 1.0) usage(argv[0]);
        axes.external_fraction.push_back(d);
      }
    } else {
      usage(argv[0]);
    }
  }

  const scenario::NamedScenario* entry = scenario::find_scenario(base_name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; try list-scenarios\n",
                 base_name.c_str());
    return 1;
  }
  // A custom sweep replaces the scenario's default axes.
  const scenario::SweepAxes& effective = axes.empty() ? entry->axes : axes;
  return run_jobs(base_name + "-sweep", scenario::expand(entry->spec, effective),
                  opt);
}

// Renders + writes the campaign outputs (table or quiet line; cells CSV,
// campaign JSON, per-job CSV) for a complete submission-order result
// vector. Shared by the plain run, --spawn and `campaign merge` so all
// three emit byte-identical artifacts from identical results.
int emit_campaign_outputs(const std::string& name,
                          const std::vector<scenario::JobResult>& results,
                          const BatchCliOptions& opt,
                          const std::string& out_dir,
                          const std::string& cells_csv_path) {
  const campaign::CampaignReport report =
      campaign::CampaignReport::from(name, results);

  if (opt.quiet) {
    std::printf(
        "%s: %zu/%zu completed, %zu cell(s), detected %zu/%zu, "
        "contained %zu/%zu\n",
        name.c_str(), report.batch.jobs_completed, report.batch.jobs_total,
        report.cells.size(), report.batch.attacks_detected,
        report.batch.attacks_ran, report.batch.attacks_contained,
        report.batch.containment_checked);
  } else {
    std::fputs(campaign::render_campaign_table(report).c_str(), stdout);
  }

  bool reports_ok = true;
  if (!opt.no_files) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const auto in_out = [&out_dir](const std::string& file_name) {
      return (std::filesystem::path(out_dir) / file_name).string();
    };
    const std::string cells_path = cells_csv_path.empty()
                                       ? in_out(name + ".cells.csv")
                                       : cells_csv_path;
    const std::string json_path = opt.json_path.empty()
                                      ? in_out(name + ".campaign.json")
                                      : opt.json_path;
    const std::string jobs_path =
        opt.csv_path.empty() ? in_out(name + ".jobs.csv") : opt.csv_path;

    util::CsvWriter cells_csv(cells_path);
    campaign::write_cells_csv(cells_csv, report);
    cells_csv.flush();
    util::CsvWriter jobs_csv(jobs_path);
    scenario::write_batch_csv(jobs_csv, results);
    jobs_csv.flush();
    const bool json_ok =
        util::write_file(json_path, campaign::campaign_json(report));
    reports_ok = cells_csv.ok() && jobs_csv.ok() && json_ok;

    // Per-job component metrics ride in their own sidecar (present only
    // under --metrics) so the main campaign JSON keeps its historical
    // shape and size.
    std::string metrics_path;
    bool any_metrics = false;
    for (const auto& r : results) any_metrics |= !r.metrics.empty();
    if (any_metrics) {
      metrics_path = in_out(name + ".metrics.json");
      util::Json doc = util::Json::object();
      doc.set("campaign", util::Json::string(name));
      util::Json jobs = util::Json::array();
      for (const auto& r : results) {
        if (r.metrics.empty()) continue;
        util::Json entry = util::Json::object();
        entry.set("index",
                  util::Json::number(static_cast<std::uint64_t>(r.index)));
        entry.set("metrics", r.metrics.to_json());
        jobs.push(std::move(entry));
      }
      doc.set("jobs", std::move(jobs));
      if (!util::write_file(metrics_path, doc.dump())) reports_ok = false;
    }

    if (!opt.quiet) {
      std::printf("reports: %s, %s, %s%s%s\n", cells_path.c_str(),
                  json_path.c_str(), jobs_path.c_str(),
                  metrics_path.empty() ? "" : ", ", metrics_path.c_str());
    }
    if (!reports_ok) {
      std::fprintf(stderr, "error: failed to write campaign reports under %s\n",
                   out_dir.c_str());
    }
  }

  return report.batch.jobs_completed == report.batch.jobs_total && reports_ok
             ? 0
             : 1;
}

// "--shard i/N": 0 <= i < N <= 1024.
bool parse_shard_selector(const char* text, std::size_t& index,
                          std::size_t& total) {
  char* end = nullptr;
  const unsigned long long i = std::strtoull(text, &end, 10);
  if (end == text || *end != '/') return false;
  const char* rest = end + 1;
  const unsigned long long n = std::strtoull(rest, &end, 10);
  if (end == rest || *end != '\0') return false;
  if (n < 1 || n > 1024 || i >= n) return false;
  index = static_cast<std::size_t>(i);
  total = static_cast<std::size_t>(n);
  return true;
}

int cmd_campaign_run(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  const std::string file = argv[3];
  BatchCliOptions opt;
  std::string out_dir = "bench/out";
  std::string cells_csv_path;
  std::size_t shard_index = 0;
  std::size_t shard_total = 0;  // 0 = not sharded
  std::size_t spawn = 0;        // 0 = no worker processes
  std::string checkpoint_path;
  bool no_checkpoint = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (parse_batch_option(argc, argv, i, opt)) continue;
    if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--cells-csv") {
      cells_csv_path = next();
    } else if (arg == "--shard") {
      if (!parse_shard_selector(next(), shard_index, shard_total)) {
        usage(argv[0]);
      }
    } else if (arg == "--spawn") {
      std::uint64_t u = 0;
      if (!parse_u64(next(), u) || u < 1 || u > 64) usage(argv[0]);
      spawn = static_cast<std::size_t>(u);
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--no-checkpoint") {
      no_checkpoint = true;
    } else if (arg == "--no-setup-cache") {
      core::FormatCache::instance().set_enabled(false);
    } else {
      usage(argv[0]);
    }
  }
  if (shard_total != 0 && spawn != 0) {
    std::fprintf(stderr, "error: --shard and --spawn are mutually exclusive\n");
    return 1;
  }
  if (!opt.trace_path.empty()) {
    std::fprintf(stderr,
                 "error: --trace applies to `run`/`sweep`, not campaigns\n");
    return 1;
  }
  if (spawn != 0 && !checkpoint_path.empty()) {
    // Spawned workers each need their own checkpoint; a single shared path
    // would be silently ignored. Per-shard files derive under --out.
    std::fprintf(stderr,
                 "error: --checkpoint PATH does not combine with --spawn "
                 "(workers checkpoint per shard under --out; use "
                 "--no-checkpoint to disable)\n");
    return 1;
  }

  campaign::CampaignSpec spec;
  std::string error;
  if (!campaign::load_campaign_file(file, spec, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // --repeats multiplies the validated grid; the job cap must survive it.
  if (spec.job_count() * opt.repeats > campaign::kMaxCampaignJobs) {
    std::fprintf(stderr,
                 "error: %s: %zu job(s) x %llu repeat(s) exceeds the %zu-job "
                 "cap\n",
                 file.c_str(), spec.job_count(),
                 static_cast<unsigned long long>(opt.repeats),
                 campaign::kMaxCampaignJobs);
    return 1;
  }

  // --- spawn: N local worker processes over the shards, then merge -------
  if (spawn != 0) {
    const std::vector<scenario::ScenarioSpec> specs =
        prepare_specs(campaign::expand_campaign(spec), opt);
    campaign::SpawnOptions spawn_opt;
    spawn_opt.shards = spawn;
    spawn_opt.threads_per_shard = opt.jobs == 0 ? 1 : opt.jobs;
    spawn_opt.out_dir = out_dir;
    spawn_opt.checkpoint = !no_checkpoint;
    spawn_opt.quiet = opt.quiet;
    spawn_opt.collect_metrics = opt.metrics;
    if (!opt.quiet) {
      std::printf("campaign %s: %zu job(s) across %zu worker process(es), "
                  "%u thread(s) each\n",
                  spec.name.c_str(), specs.size(), spawn,
                  spawn_opt.threads_per_shard);
    }
    std::vector<scenario::JobResult> merged;
    std::vector<std::string> shard_files;
    if (!campaign::run_campaign_sharded_local(spec.name, specs, spawn_opt,
                                              &merged, &shard_files, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!opt.quiet) {
      for (const std::string& path : shard_files) {
        std::printf("shard file: %s\n", path.c_str());
      }
    }
    return emit_campaign_outputs(spec.name, merged, opt, out_dir,
                                 cells_csv_path);
  }

  // --- shard worker: run slice i/N, write the shard result file ----------
  if (shard_total != 0) {
    const std::vector<scenario::ScenarioSpec> specs =
        prepare_specs(campaign::expand_campaign(spec), opt);
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const auto in_out = [&out_dir](const std::string& file_name) {
      return (std::filesystem::path(out_dir) / file_name).string();
    };
    campaign::ShardRunOptions run;
    run.shard = shard_index;
    run.shards = shard_total;
    run.threads = opt.jobs;
    run.collect_metrics = opt.metrics;
    run.campaign = spec.name;
    run.progress_path = in_out(
        campaign::progress_file_name(spec.name, shard_index, shard_total));
    if (!no_checkpoint) {
      run.checkpoint_path =
          checkpoint_path.empty()
              ? in_out(campaign::checkpoint_file_name(spec.name, shard_index,
                                                      shard_total))
              : checkpoint_path;
    }
    const std::size_t slice =
        campaign::shard_indices(specs.size(), shard_index, shard_total).size();
    if (!opt.quiet) {
      std::printf("campaign %s: shard %zu/%zu — %zu of %zu job(s) on %u "
                  "thread(s)\n",
                  spec.name.c_str(), shard_index, shard_total, slice,
                  specs.size(), opt.jobs == 0 ? 0u : opt.jobs);
      run.on_job_done = strided_progress(slice);
    }
    const campaign::ShardRunOutcome outcome = campaign::run_shard(specs, run);
    if (!outcome.checkpoint_ok) {
      std::fprintf(stderr, "error: checkpoint write failed (%s)\n",
                   run.checkpoint_path.c_str());
    }
    const std::string shard_path =
        in_out(campaign::shard_file_name(spec.name, shard_index, shard_total));
    if (!campaign::write_shard_file(
            shard_path,
            campaign::to_shard_file(spec.name, outcome, shard_index,
                                    shard_total,
                                    campaign::grid_fingerprint(specs)),
            &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::size_t completed = 0;
    for (const std::size_t i : outcome.indices) {
      if (outcome.results[i].soc.completed) ++completed;
    }
    std::printf("%s shard %zu/%zu: %zu/%zu completed (%zu resumed from "
                "checkpoint, %zu executed) -> %s\n",
                spec.name.c_str(), shard_index, shard_total, completed,
                outcome.indices.size(), outcome.resumed, outcome.executed,
                shard_path.c_str());
    return completed == outcome.indices.size() && outcome.checkpoint_ok ? 0
                                                                        : 1;
  }

  // --- plain single-process run ------------------------------------------
  std::vector<scenario::JobResult> results;
  if (!checkpoint_path.empty() && !no_checkpoint) {
    // Checkpointed single-process run = shard 0 of 1.
    const std::vector<scenario::ScenarioSpec> specs =
        prepare_specs(campaign::expand_campaign(spec), opt);
    campaign::ShardRunOptions run;
    run.shard = 0;
    run.shards = 1;
    run.threads = opt.jobs;
    run.checkpoint_path = checkpoint_path;
    run.collect_metrics = opt.metrics;
    if (!opt.quiet) {
      std::printf("campaign %s: %zu job(s) on %u thread(s)\n",
                  spec.name.c_str(), specs.size(),
                  opt.jobs == 0 ? 0u : opt.jobs);
      run.on_job_done = strided_progress(specs.size());
    }
    campaign::ShardRunOutcome outcome = campaign::run_shard(specs, run);
    if (!outcome.checkpoint_ok) {
      std::fprintf(stderr, "error: checkpoint write failed (%s)\n",
                   checkpoint_path.c_str());
      return 1;
    }
    if (!opt.quiet && outcome.resumed > 0) {
      std::printf("  resumed %zu job(s) from %s\n", outcome.resumed,
                  checkpoint_path.c_str());
    }
    results = std::move(outcome.results);
  } else {
    results = execute_specs("campaign", spec.name,
                            campaign::expand_campaign(spec), opt, false);
  }
  return emit_campaign_outputs(spec.name, results, opt, out_dir,
                               cells_csv_path);
}

int cmd_campaign_merge(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  BatchCliOptions opt;
  std::string out_dir = "bench/out";
  std::string cells_csv_path;
  std::vector<std::string> shard_paths;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (parse_batch_option(argc, argv, i, opt)) continue;
    if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--cells-csv") {
      cells_csv_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) usage(argv[0]);

  std::string name;
  std::vector<scenario::JobResult> results;
  std::string error;
  if (!campaign::merge_shard_files(shard_paths, &name, &results, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!opt.quiet) {
    std::printf("merged %zu shard file(s): campaign %s, %zu job(s)\n",
                shard_paths.size(), name.c_str(), results.size());
  }
  return emit_campaign_outputs(name, results, opt, out_dir, cells_csv_path);
}

int cmd_campaign_validate(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  for (int i = 3; i < argc; ++i) {
    campaign::CampaignSpec spec;
    std::string error;
    if (!campaign::load_campaign_file(argv[i], spec, &error)) {
      std::fprintf(stderr, "%s: INVALID\n  %s\n", argv[i], error.c_str());
      return 1;
    }
    // Cells = grid points with the seed axis collapsed.
    const std::size_t seeds =
        spec.axes.seeds.empty() ? 1 : spec.axes.seeds.size();
    std::printf("%s: ok — campaign '%s', %zu job(s), %zu cell(s)\n", argv[i],
                spec.name.c_str(), spec.job_count(),
                spec.job_count() / seeds);
  }
  return 0;
}

int cmd_campaign_status(int argc, char** argv) {
  std::string dir = "bench/out";
  if (argc >= 4) {
    if (argv[3][0] == '-') usage(argv[0]);
    dir = argv[3];
  }
  std::vector<campaign::ShardProgress> shards;
  std::string error;
  if (!campaign::scan_progress_dir(dir, shards, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::fputs(campaign::render_campaign_status(shards).c_str(), stdout);
  return shards.empty() ? 1 : 0;
}

int cmd_campaign_export(int argc, char** argv) {
  std::string dir = "bench/out/builtin-campaigns";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      usage(argv[0]);
    }
  }
  std::vector<std::string> paths;
  std::string error;
  if (!campaign::export_builtin_campaigns(dir, &paths, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& path : paths) {
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("%zu builtin scenario(s) exported as campaign files\n",
              paths.size());
  return 0;
}

// "host:port" with a non-empty host and a valid TCP port.
bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  std::uint64_t p = 0;
  if (!parse_u64(text.c_str() + colon + 1, p) || p == 0 || p > 65535) {
    return false;
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

int cmd_campaign_serve(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  const std::string file = argv[3];
  BatchCliOptions opt;
  campaign::FleetServerOptions serve_opt;
  std::string cells_csv_path;
  std::uint16_t port = 0;  // 0 = ephemeral (the bound port is printed)
  bool listen_any = false;
  bool http = false;
  std::uint16_t http_port = 0;  // 0 = ephemeral (the bound port is printed)
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (parse_batch_option(argc, argv, i, opt)) continue;
    std::uint64_t u = 0;
    if (arg == "--port" && parse_u64(next(), u) && u <= 65535) {
      port = static_cast<std::uint16_t>(u);
    } else if (arg == "--shards" && parse_u64(next(), u) && u >= 1 &&
               u <= 1024) {
      serve_opt.shards = static_cast<std::size_t>(u);
    } else if (arg == "--out") {
      serve_opt.out_dir = next();
    } else if (arg == "--cells-csv") {
      cells_csv_path = next();
    } else if (arg == "--lease-timeout" && parse_u64(next(), u) && u >= 1) {
      serve_opt.lease_timeout_ms = u;
    } else if (arg == "--heartbeat" && parse_u64(next(), u) && u >= 1) {
      serve_opt.heartbeat_ms = u;
    } else if (arg == "--listen-any") {
      listen_any = true;
    } else if (arg == "--http-port" && parse_u64(next(), u) && u <= 65535) {
      http = true;
      http_port = static_cast<std::uint16_t>(u);
    } else if (arg == "--no-audit") {
      serve_opt.audit = false;
    } else if (arg == "--no-journal") {
      serve_opt.journal = false;
    } else if (arg == "--resume") {
      serve_opt.resume = true;
    } else {
      usage(argv[0]);
    }
  }
  if (serve_opt.resume && !serve_opt.journal) {
    std::fprintf(stderr, "error: --resume needs the lease journal "
                         "(drop --no-journal)\n");
    return 1;
  }
  if (!opt.trace_path.empty()) {
    std::fprintf(stderr,
                 "error: --trace applies to `run`/`sweep`, not campaigns\n");
    return 1;
  }

  campaign::CampaignSpec spec;
  std::string error;
  if (!campaign::load_campaign_file(file, spec, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (spec.job_count() * opt.repeats > campaign::kMaxCampaignJobs) {
    std::fprintf(stderr,
                 "error: %s: %zu job(s) x %llu repeat(s) exceeds the %zu-job "
                 "cap\n",
                 file.c_str(), spec.job_count(),
                 static_cast<unsigned long long>(opt.repeats),
                 campaign::kMaxCampaignJobs);
    return 1;
  }

  serve_opt.quiet = opt.quiet;
  serve_opt.grid.repeats = opt.repeats;
  serve_opt.grid.max_cycles = opt.max_cycles;
  serve_opt.grid.collect_metrics = opt.metrics;
  // Server-side chaos (kill_server_after, for the restart-recovery CI
  // leg) rides the same SECBUS_CHAOS variable the workers use.
  if (!campaign::ChaosOptions::from_env(serve_opt.chaos, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  net::TcpServerTransport tcp_transport;
  if (!tcp_transport.listen(port, /*loopback_only=*/!listen_any, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // With a net: chaos directive the server's side of every connection is
  // lossy too — the decorator wraps the listening transport wholesale.
  net::ChaosTransport chaos_transport(serve_opt.chaos.net, &tcp_transport);
  net::Transport& transport = serve_opt.chaos.net.enabled
                                  ? static_cast<net::Transport&>(chaos_transport)
                                  : tcp_transport;
  campaign::FleetServer server(transport, spec, serve_opt);
  if (!server.init_error().empty()) {
    std::fprintf(stderr, "error: %s\n", server.init_error().c_str());
    return 1;
  }
  // Always printed (and flushed) so scripts can scrape the bound port —
  // essential with --port 0.
  std::printf("fleet: serving campaign %s on %s:%u — %zu job(s) across %zu "
              "shard(s), lease timeout %llu ms%s\n",
              spec.name.c_str(), listen_any ? "0.0.0.0" : "127.0.0.1",
              static_cast<unsigned>(tcp_transport.bound_port()),
              server.specs().size(), serve_opt.shards,
              static_cast<unsigned long long>(serve_opt.lease_timeout_ms),
              serve_opt.resume ? " (resumed)" : "");
  if (serve_opt.resume) {
    std::printf("fleet: epoch %llu, %zu shard(s) already committed in the "
                "journal\n",
                static_cast<unsigned long long>(server.epoch()),
                server.resumed_shards());
  }
  std::fflush(stdout);

  // Observability endpoints share the fleet loop: the server's run() calls
  // back between protocol steps and we sweep the HTTP socket non-blocking.
  // Scrapes read the same in-memory state the protocol mutates — no locks,
  // no second thread, no effect on the deterministic artifacts.
  net::HttpServer http_server;
  std::function<void()> between_steps;
  if (http) {
    if (!http_server.listen(http_port, /*loopback_only=*/!listen_any,
                            &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("http: /metrics and /status on %s:%u\n",
                listen_any ? "0.0.0.0" : "127.0.0.1",
                static_cast<unsigned>(http_server.bound_port()));
    std::fflush(stdout);
    between_steps = [&server, &http_server]() {
      const net::HttpServer::Handler handler =
          [&server](const net::HttpRequest& request) {
            net::HttpResponse response;
            if (request.target == "/metrics") {
              response.content_type = "text/plain; version=0.0.4";
              response.body = obs::prometheus_text(server.fleet_registry());
            } else if (request.target == "/status") {
              response.content_type = "application/json";
              response.body = server.status_json().dump(0);
              response.body += '\n';
            } else {
              response.status = 404;
              response.body = "not found\n";
            }
            return response;
          };
      std::string http_error;
      http_server.poll(0, handler, &http_error);
    };
  }
  if (!server.run(&error, between_steps)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  http_server.close();
  if (serve_opt.audit && !server.audit_path().empty()) {
    std::printf("fleet: lease audit log at %s\n", server.audit_path().c_str());
  }
  if (serve_opt.journal && !server.journal_path().empty()) {
    std::printf("fleet: lease journal at %s\n",
                server.journal_path().c_str());
  }
  if (server.reassignments() != 0) {
    std::fprintf(stderr, "fleet: %zu lease reassignment(s) during this run\n",
                 server.reassignments());
  }
  return emit_campaign_outputs(spec.name, server.results(), opt,
                               serve_opt.out_dir, cells_csv_path);
}

int cmd_campaign_worker(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  campaign::FleetWorkerOptions worker_opt;
  if (!parse_host_port(argv[3], worker_opt.host, worker_opt.port)) {
    std::fprintf(stderr, "error: campaign worker wants <host:port>, got "
                         "\"%s\"\n",
                 argv[3]);
    return 1;
  }
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    std::uint64_t u = 0;
    if (arg == "--jobs" && parse_u64(next(), u) && u <= 256) {
      worker_opt.threads = static_cast<unsigned>(u);
    } else if (arg == "--out") {
      worker_opt.out_dir = next();
    } else if (arg == "--id") {
      worker_opt.worker_id = next();
    } else if (arg == "--reconnect" && parse_u64(next(), u) && u <= 1000) {
      worker_opt.max_reconnects = static_cast<std::size_t>(u);
    } else if (arg == "--backoff" && parse_u64(next(), u) && u >= 1) {
      worker_opt.backoff_ms = u;
    } else if (arg == "--no-checkpoint") {
      worker_opt.checkpoint = false;
    } else if (arg == "--quiet") {
      worker_opt.quiet = true;
    } else if (arg == "--no-setup-cache") {
      core::FormatCache::instance().set_enabled(false);
    } else {
      usage(argv[0]);
    }
  }
  std::string error;
  if (!campaign::ChaosOptions::from_env(worker_opt.chaos, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  campaign::FleetWorkerStats stats;
  if (!campaign::run_fleet_worker(worker_opt, &stats, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("fleet worker: %zu shard(s) submitted, %zu refused, %zu "
              "reconnect(s)\n",
              stats.shards_completed, stats.shards_refused, stats.reconnects);
  return 0;
}

int cmd_campaign_top(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  std::string host;
  std::uint16_t port = 0;
  if (!parse_host_port(argv[3], host, port)) {
    std::fprintf(stderr,
                 "error: campaign top wants <host:port>, got \"%s\"\n",
                 argv[3]);
    return 1;
  }
  std::uint64_t interval_ms = 1000;
  bool once = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    std::uint64_t u = 0;
    if (arg == "--interval" && parse_u64(next(), u) && u >= 1) {
      interval_ms = u;
    } else if (arg == "--once") {
      once = true;
    } else {
      usage(argv[0]);
    }
  }
  bool first = true;
  for (;;) {
    int status = 0;
    std::string body;
    std::string error;
    if (!net::http_get(host, port, "/status", &status, &body, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return first ? 1 : 0;  // a vanished server after a good poll = done
    }
    if (status != 200) {
      std::fprintf(stderr, "error: /status returned HTTP %d\n", status);
      return 1;
    }
    util::Json doc;
    if (!util::Json::parse(body, doc, &error)) {
      std::fprintf(stderr, "error: /status body: %s\n", error.c_str());
      return 1;
    }
    if (!once) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    std::fputs(campaign::render_fleet_top(doc).c_str(), stdout);
    std::fflush(stdout);
    first = false;
    const util::Json* finished = doc.find("finished");
    if (once || (finished != nullptr && finished->is_bool() &&
                 finished->as_bool())) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

int cmd_campaign_timeline(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);
  const std::string audit_path = argv[3];
  std::string out_path;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      usage(argv[0]);
    }
  }
  if (out_path.empty()) {
    // <campaign>.fleet-audit.jsonl -> <campaign>.fleet-timeline.json
    const std::string suffix = ".fleet-audit.jsonl";
    if (audit_path.size() > suffix.size() &&
        audit_path.compare(audit_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
      out_path = audit_path.substr(0, audit_path.size() - suffix.size()) +
                 ".fleet-timeline.json";
    } else {
      out_path = audit_path + ".timeline.json";
    }
  }
  std::vector<campaign::AuditRecord> records;
  std::string error;
  if (!campaign::read_audit_log(audit_path, records, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  obs::FleetTimelineStats stats;
  if (!obs::write_fleet_timeline(out_path, records, &error, &stats)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("fleet timeline: %zu audit record(s) -> %s\n", records.size(),
              out_path.c_str());
  std::printf("  %zu worker track(s), %zu lease span(s) (%zu committed, %zu "
              "expired, %zu released, %zu lost), %zu extend(s), %zu "
              "instant(s), %zu unmatched across %zu server epoch(s)\n",
              stats.tracks, stats.lease_spans, stats.committed, stats.expired,
              stats.released, stats.lost, stats.extends, stats.instants,
              stats.unmatched, stats.epochs);
  return stats.unmatched == 0 ? 0 : 1;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string verb = argv[2];
  if (verb == "run") return cmd_campaign_run(argc, argv);
  if (verb == "merge") return cmd_campaign_merge(argc, argv);
  if (verb == "validate") return cmd_campaign_validate(argc, argv);
  if (verb == "status") return cmd_campaign_status(argc, argv);
  if (verb == "export-builtin") return cmd_campaign_export(argc, argv);
  if (verb == "serve") return cmd_campaign_serve(argc, argv);
  if (verb == "worker") return cmd_campaign_worker(argc, argv);
  if (verb == "top") return cmd_campaign_top(argc, argv);
  if (verb == "timeline") return cmd_campaign_timeline(argc, argv);
  usage(argv[0]);
}

int legacy_single_run(int argc, char** argv) {
  soc::SocConfig cfg = soc::section5_config();
  cfg.transactions_per_cpu = 300;
  sim::Cycle max_cycles = 50'000'000;
  bool full_report = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    std::uint64_t u = 0;
    double d = 0.0;
    if (arg == "--cpus" && parse_u64(next(), u) && u >= 1 && u <= 63) {
      cfg.processors = u;
    } else if (arg == "--topology") {
      if (!soc::parse_topology(next(), cfg.topology)) usage(argv[0]);
    } else if (arg == "--security") {
      if (!soc::parse_security_mode(next(), cfg.security)) usage(argv[0]);
    } else if (arg == "--protection") {
      if (!soc::parse_protection_level(next(), cfg.protection)) usage(argv[0]);
    } else if (arg == "--external" && parse_double(next(), d) && d >= 0.0 &&
               d <= 1.0) {
      cfg.external_fraction = d;
    } else if (arg == "--transactions" && parse_u64(next(), u) && u >= 1) {
      cfg.transactions_per_cpu = u;
    } else if (arg == "--compute" && parse_u64(next(), u)) {
      cfg.compute_min = u;
      cfg.compute_max = u + 8;
    } else if (arg == "--extra-rules" && parse_u64(next(), u) && u <= 1024) {
      cfg.extra_rules = u;
    } else if (arg == "--line-bytes" && parse_u64(next(), u) &&
               (u == 16 || u == 32 || u == 64 || u == 128)) {
      cfg.line_bytes = u;
    } else if (arg == "--seed" && parse_u64(next(), u)) {
      cfg.seed = u;
    } else if (arg == "--max-cycles" && parse_u64(next(), u) && u >= 1) {
      max_cycles = u;
    } else if (arg == "--reconfig") {
      cfg.enable_reconfig = true;
    } else if (arg == "--report") {
      full_report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
    }
  }

  if (!quiet) {
    std::printf(
        "secbus: %zu CPU%s, security=%s, protection=%s, external=%.0f%%, "
        "%llu txn/cpu, seed=%llu\n",
        cfg.processors, cfg.processors == 1 ? "" : "s",
        to_string(cfg.security), to_string(cfg.protection),
        100.0 * cfg.external_fraction,
        static_cast<unsigned long long>(cfg.transactions_per_cpu),
        static_cast<unsigned long long>(cfg.seed));
  }

  soc::Soc system(cfg);
  const soc::SocResults results = system.run(max_cycles);

  std::printf(
      "%s in %llu cycles (%.3f ms @100MHz): %llu ok, %llu failed, "
      "latency %.1f cyc, bus %.1f%%, alerts %llu\n",
      results.completed ? "completed" : "TIMED OUT",
      static_cast<unsigned long long>(results.cycles),
      cfg.clock.cycles_to_us(results.cycles) / 1000.0,
      static_cast<unsigned long long>(results.transactions_ok),
      static_cast<unsigned long long>(results.transactions_failed),
      results.avg_access_latency, 100.0 * results.bus_occupancy,
      static_cast<unsigned long long>(results.alerts));

  if (full_report) {
    std::fputs(soc::render_full_report(system).c_str(), stdout);
  }
  return results.completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "list-scenarios") == 0) {
    return cmd_list_scenarios();
  }
  if (argc >= 2 && std::strcmp(argv[1], "crypto-info") == 0) {
    // Detected CPU features, selected backend and any env override — CI logs
    // this so every run records which crypto datapath it exercised.
    std::fputs(crypto::backend_report().c_str(), stdout);
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "run") == 0) {
    return cmd_run(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0) {
    return cmd_sweep(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "campaign") == 0) {
    return cmd_campaign(argc, argv);
  }
  if (argc >= 2 && argv[1][0] != '-') usage(argv[0]);
  return legacy_single_run(argc, argv);
}
