// secbus_cli — command-line driver for the secured-MPSoC simulator.
//
// Lets a user explore the design space without writing C++:
//
//   secbus_cli [options]
//     --cpus N             processors (default 3, the Section-V case study)
//     --security MODE      none | distributed | centralized   (default distributed)
//     --protection LEVEL   plaintext | cipher | full          (default full)
//     --external FRAC      external-traffic fraction 0..1     (default 0.3)
//     --transactions N     per-CPU workload length            (default 300)
//     --compute N          mean compute gap in cycles         (default 8)
//     --extra-rules N      dummy policy rules per firewall    (default 0)
//     --line-bytes N       LCF protection line size           (default 32)
//     --seed N             workload seed                      (default 42)
//     --max-cycles N       simulation cycle cap               (default 50M)
//     --reconfig           enable the alert-driven lockdown responder
//     --report             print the full post-run report tables
//     --quiet              print only the one-line summary
//
// Exit status: 0 on a completed run, 1 on timeout or config error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "soc/presets.hpp"
#include "soc/report.hpp"
#include "soc/soc.hpp"

using namespace secbus;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cpus N] [--security none|distributed|centralized]\n"
               "          [--protection plaintext|cipher|full] [--external F]\n"
               "          [--transactions N] [--compute N] [--extra-rules N]\n"
               "          [--line-bytes N] [--seed N] [--max-cycles N]\n"
               "          [--reconfig] [--report] [--quiet]\n",
               argv0);
  std::exit(1);
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  soc::SocConfig cfg = soc::section5_config();
  cfg.transactions_per_cpu = 300;
  sim::Cycle max_cycles = 50'000'000;
  bool full_report = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    std::uint64_t u = 0;
    double d = 0.0;
    if (arg == "--cpus" && parse_u64(next(), u) && u >= 1 && u <= 16) {
      cfg.processors = u;
    } else if (arg == "--security") {
      const std::string mode = next();
      if (mode == "none") {
        cfg.security = soc::SecurityMode::kNone;
      } else if (mode == "distributed") {
        cfg.security = soc::SecurityMode::kDistributed;
      } else if (mode == "centralized") {
        cfg.security = soc::SecurityMode::kCentralized;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--protection") {
      const std::string level = next();
      if (level == "plaintext") {
        cfg.protection = soc::ProtectionLevel::kPlaintext;
      } else if (level == "cipher") {
        cfg.protection = soc::ProtectionLevel::kCipherOnly;
      } else if (level == "full") {
        cfg.protection = soc::ProtectionLevel::kFull;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--external" && parse_double(next(), d) && d >= 0.0 &&
               d <= 1.0) {
      cfg.external_fraction = d;
    } else if (arg == "--transactions" && parse_u64(next(), u) && u >= 1) {
      cfg.transactions_per_cpu = u;
    } else if (arg == "--compute" && parse_u64(next(), u)) {
      cfg.compute_min = u;
      cfg.compute_max = u + 8;
    } else if (arg == "--extra-rules" && parse_u64(next(), u) && u <= 1024) {
      cfg.extra_rules = u;
    } else if (arg == "--line-bytes" && parse_u64(next(), u) &&
               (u == 16 || u == 32 || u == 64 || u == 128)) {
      cfg.line_bytes = u;
    } else if (arg == "--seed" && parse_u64(next(), u)) {
      cfg.seed = u;
    } else if (arg == "--max-cycles" && parse_u64(next(), u) && u >= 1) {
      max_cycles = u;
    } else if (arg == "--reconfig") {
      cfg.enable_reconfig = true;
    } else if (arg == "--report") {
      full_report = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
    }
  }

  if (!quiet) {
    std::printf(
        "secbus: %zu CPU%s, security=%s, protection=%s, external=%.0f%%, "
        "%llu txn/cpu, seed=%llu\n",
        cfg.processors, cfg.processors == 1 ? "" : "s",
        to_string(cfg.security), to_string(cfg.protection),
        100.0 * cfg.external_fraction,
        static_cast<unsigned long long>(cfg.transactions_per_cpu),
        static_cast<unsigned long long>(cfg.seed));
  }

  soc::Soc system(cfg);
  const soc::SocResults results = system.run(max_cycles);

  std::printf(
      "%s in %llu cycles (%.3f ms @100MHz): %llu ok, %llu failed, "
      "latency %.1f cyc, bus %.1f%%, alerts %llu\n",
      results.completed ? "completed" : "TIMED OUT",
      static_cast<unsigned long long>(results.cycles),
      cfg.clock.cycles_to_us(results.cycles) / 1000.0,
      static_cast<unsigned long long>(results.transactions_ok),
      static_cast<unsigned long long>(results.transactions_failed),
      results.avg_access_latency, 100.0 * results.bus_occupancy,
      static_cast<unsigned long long>(results.alerts));

  if (full_report) {
    std::fputs(soc::render_full_report(system).c_str(), stdout);
  }
  return results.completed ? 0 : 1;
}
